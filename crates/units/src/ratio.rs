//! Dimensionless fractions (energy savings, utilisations, write fractions).

use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::error::{check_in_range, QuantityError};

/// A dimensionless fraction in `[0, 1]`.
///
/// The paper expresses three of its key quantities as fractions: the energy
/// saving goal `E` (e.g. 80 %), the capacity utilisation `C` (e.g. 88 %) and
/// the write fraction `w` (40 %). Keeping them in a clamped newtype avoids
/// percent-vs-fraction confusion at call sites.
///
/// ```
/// use memstream_units::Ratio;
///
/// let saving = Ratio::from_percent(80.0);
/// assert_eq!(saving.fraction(), 0.8);
/// assert!((saving.complement().percent() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio {
    fraction: f64,
}

impl Ratio {
    /// The zero fraction.
    pub const ZERO: Ratio = Ratio { fraction: 0.0 };
    /// The unit fraction (100 %).
    pub const ONE: Ratio = Ratio { fraction: 1.0 };

    /// Creates a ratio from a fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` lies outside `[0, 1]` or is not finite; use
    /// [`Ratio::try_from_fraction`] for fallible construction.
    #[must_use]
    pub fn from_fraction(fraction: f64) -> Self {
        Self::try_from_fraction(fraction).expect("ratio")
    }

    /// Fallible variant of [`Ratio::from_fraction`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError`] if `fraction` is outside `[0, 1]` or not
    /// finite.
    pub fn try_from_fraction(fraction: f64) -> Result<Self, QuantityError> {
        check_in_range("ratio", fraction, 0.0, 1.0).map(|fraction| Self { fraction })
    }

    /// Creates a ratio from a percentage in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `percent` lies outside `[0, 100]` or is not finite.
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Self::try_from_percent(percent).expect("ratio")
    }

    /// Fallible variant of [`Ratio::from_percent`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError`] if `percent` is outside `[0, 100]` or not
    /// finite.
    pub fn try_from_percent(percent: f64) -> Result<Self, QuantityError> {
        check_in_range("ratio", percent, 0.0, 100.0).map(|p| Self {
            fraction: p / 100.0,
        })
    }

    /// The ratio as a fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.fraction
    }

    /// The ratio as a percentage in `[0, 100]`.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.fraction * 100.0
    }

    /// `1 − self`; e.g. the energy *budget* left after a saving goal.
    #[must_use]
    pub fn complement(self) -> Ratio {
        Ratio {
            fraction: (1.0 - self.fraction).clamp(0.0, 1.0),
        }
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: Ratio) -> Ratio {
        Ratio {
            fraction: self.fraction.min(other.fraction),
        }
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Ratio) -> Ratio {
        Ratio {
            fraction: self.fraction.max(other.fraction),
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

impl Add for Ratio {
    type Output = Ratio;
    /// Saturates at 100 %.
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio {
            fraction: (self.fraction + rhs.fraction).min(1.0),
        }
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    /// Saturates at 0 %.
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio {
            fraction: (self.fraction - rhs.fraction).max(0.0),
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio {
            fraction: self.fraction * rhs.fraction,
        }
    }
}

impl Mul<f64> for Ratio {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.fraction * rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percent_and_fraction_agree() {
        assert_eq!(Ratio::from_percent(40.0), Ratio::from_fraction(0.4));
        assert_eq!(Ratio::from_percent(88.0).fraction(), 0.88);
    }

    #[test]
    fn complement_of_saving_goal() {
        let e = Ratio::from_percent(80.0);
        assert!((e.complement().fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(Ratio::try_from_fraction(1.01).is_err());
        assert!(Ratio::try_from_percent(-5.0).is_err());
        assert!(Ratio::try_from_fraction(f64::NAN).is_err());
    }

    #[test]
    fn add_saturates_at_one() {
        assert_eq!(
            Ratio::from_percent(70.0) + Ratio::from_percent(70.0),
            Ratio::ONE
        );
    }

    #[test]
    fn sub_saturates_at_zero() {
        assert_eq!(
            Ratio::from_percent(10.0) - Ratio::from_percent(70.0),
            Ratio::ZERO
        );
    }

    #[test]
    fn display_uses_percent() {
        assert_eq!(Ratio::from_percent(88.0).to_string(), "88.0%");
    }

    proptest! {
        #[test]
        fn complement_involution(f in 0.0..=1.0f64) {
            let r = Ratio::from_fraction(f);
            prop_assert!((r.complement().complement().fraction() - f).abs() < 1e-12);
        }

        #[test]
        fn product_stays_in_range(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
            let p = Ratio::from_fraction(a) * Ratio::from_fraction(b);
            prop_assert!(p.fraction() >= 0.0 && p.fraction() <= 1.0);
        }
    }
}
