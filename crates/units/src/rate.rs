//! Bit rates.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use crate::error::{check_non_negative, QuantityError};
use crate::{DataSize, Duration, Ratio};

/// A data rate in bits per second.
///
/// The paper quotes stream rates in `kbps` with the telecom convention
/// `1 kbps = 1000 bit/s` (see `DESIGN.md` §4.1), and device media rates in
/// `kbps` per probe (Table I: 100 kbps/probe × 1024 active probes).
///
/// ```
/// use memstream_units::BitRate;
///
/// let per_probe = BitRate::from_kbps(100.0);
/// let media = per_probe * 1024.0;
/// assert_eq!(media.megabits_per_second(), 102.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitRate {
    bits_per_second: f64,
}

impl BitRate {
    /// Zero bits per second.
    pub const ZERO: BitRate = BitRate {
        bits_per_second: 0.0,
    };

    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite; use
    /// [`BitRate::try_from_bits_per_second`] for fallible construction.
    #[must_use]
    pub fn from_bits_per_second(bps: f64) -> Self {
        Self::try_from_bits_per_second(bps).expect("bit rate")
    }

    /// Fallible variant of [`BitRate::from_bits_per_second`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError`] if the value is negative, NaN or infinite.
    pub fn try_from_bits_per_second(bps: f64) -> Result<Self, QuantityError> {
        check_non_negative("bit rate", bps).map(|bits_per_second| Self { bits_per_second })
    }

    /// Creates a rate from kilobits per second (`1 kbps = 1000 bit/s`).
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    #[must_use]
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bits_per_second(kbps * 1e3)
    }

    /// Creates a rate from megabits per second (`10^6 bit/s`).
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bits_per_second(mbps * 1e6)
    }

    /// The rate in bits per second.
    #[must_use]
    pub fn bits_per_second(self) -> f64 {
        self.bits_per_second
    }

    /// The rate in kilobits per second.
    #[must_use]
    pub fn kilobits_per_second(self) -> f64 {
        self.bits_per_second / 1e3
    }

    /// The rate in megabits per second.
    #[must_use]
    pub fn megabits_per_second(self) -> f64 {
        self.bits_per_second / 1e6
    }

    /// Returns `true` for the zero rate.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.bits_per_second == 0.0
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: BitRate) -> BitRate {
        BitRate {
            bits_per_second: self.bits_per_second.min(other.bits_per_second),
        }
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: BitRate) -> BitRate {
        BitRate {
            bits_per_second: self.bits_per_second.max(other.bits_per_second),
        }
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits_per_second >= 1e6 {
            write!(f, "{:.2} Mbps", self.megabits_per_second())
        } else if self.bits_per_second >= 1e3 {
            write!(f, "{:.1} kbps", self.kilobits_per_second())
        } else {
            write!(f, "{:.0} bps", self.bits_per_second)
        }
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate {
            bits_per_second: self.bits_per_second + rhs.bits_per_second,
        }
    }
}

impl Sub for BitRate {
    type Output = BitRate;
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative (a refill
    /// requires the media rate to exceed the stream rate).
    fn sub(self, rhs: BitRate) -> BitRate {
        debug_assert!(
            self.bits_per_second >= rhs.bits_per_second,
            "bit rate subtraction underflow: {} - {}",
            self.bits_per_second,
            rhs.bits_per_second
        );
        BitRate {
            bits_per_second: (self.bits_per_second - rhs.bits_per_second).max(0.0),
        }
    }
}

impl Mul<f64> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: f64) -> BitRate {
        BitRate::from_bits_per_second(self.bits_per_second * rhs)
    }
}

impl Mul<BitRate> for f64 {
    type Output = BitRate;
    fn mul(self, rhs: BitRate) -> BitRate {
        rhs * self
    }
}

impl Mul<Ratio> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: Ratio) -> BitRate {
        self * rhs.fraction()
    }
}

impl Div<f64> for BitRate {
    type Output = BitRate;
    fn div(self, rhs: f64) -> BitRate {
        BitRate::from_bits_per_second(self.bits_per_second / rhs)
    }
}

/// Dimensionless ratio of two rates.
impl Div<BitRate> for BitRate {
    type Output = f64;
    fn div(self, rhs: BitRate) -> f64 {
        self.bits_per_second / rhs.bits_per_second
    }
}

/// `(bits/s) * s = bits`.
impl Mul<Duration> for BitRate {
    type Output = DataSize;
    fn mul(self, rhs: Duration) -> DataSize {
        DataSize::from_bits(self.bits_per_second * rhs.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_media_rate() {
        // Table I: 1024 active probes x 100 kbps/probe = 102.4 Mbps.
        let media = BitRate::from_kbps(100.0) * 1024.0;
        assert_eq!(media.bits_per_second(), 102_400_000.0);
    }

    #[test]
    fn kbps_is_decimal() {
        assert_eq!(BitRate::from_kbps(32.0).bits_per_second(), 32_000.0);
        assert_eq!(BitRate::from_kbps(4096.0).bits_per_second(), 4_096_000.0);
    }

    #[test]
    fn net_fill_rate() {
        let rm = BitRate::from_mbps(102.4);
        let rs = BitRate::from_kbps(1024.0);
        let net = rm - rs;
        assert_eq!(net.bits_per_second(), 102_400_000.0 - 1_024_000.0);
    }

    #[test]
    fn rate_times_duration_gives_size() {
        let rs = BitRate::from_kbps(1024.0);
        let bits = rs * Duration::from_seconds(2.0);
        assert_eq!(bits.bits(), 2_048_000.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BitRate::from_kbps(32.0).to_string(), "32.0 kbps");
        assert_eq!(BitRate::from_mbps(102.4).to_string(), "102.40 Mbps");
        assert_eq!(BitRate::from_bits_per_second(500.0).to_string(), "500 bps");
    }

    proptest! {
        #[test]
        fn ratio_of_rate_with_itself_is_one(bps in 1.0..1e9f64) {
            let r = BitRate::from_bits_per_second(bps);
            prop_assert!((r / r - 1.0).abs() < 1e-12);
        }

        #[test]
        fn scaling_is_linear(bps in 0.0..1e9f64, k in 0.0..100.0f64) {
            let r = BitRate::from_bits_per_second(bps);
            prop_assert!(((r * k).bits_per_second() - bps * k).abs() <= 1e-6 + bps * k * 1e-12);
        }
    }
}
