//! Typed physical quantities for the `memstream` workspace.
//!
//! The buffering model of Khatib & Abelmann (DATE 2011) mixes data sizes
//! (bits, kB buffers, GB devices), bit rates (kbps streams, Mbps media
//! rates), durations (milliseconds of seek, years of lifetime), power
//! (milliwatts) and energy (millijoules, nanojoule-per-bit). Mixing those up
//! silently is the classic failure mode of this kind of study, so every
//! quantity in this workspace is a newtype with checked constructors and the
//! physically meaningful arithmetic implemented as operator overloads:
//!
//! ```
//! use memstream_units::{BitRate, DataSize, Duration, Energy, Power};
//!
//! let rate = BitRate::from_kbps(1024.0);
//! let buffer = DataSize::from_kibibytes(20.0);
//! let drain_time: Duration = buffer / rate;          // bits / (bits/s) = s
//! let standby: Power = Power::from_milliwatts(5.0);
//! let energy: Energy = standby * drain_time;         // W * s = J
//! assert!(energy.joules() > 0.0);
//! ```
//!
//! # Conventions (documented in `DESIGN.md`)
//!
//! * `kbps` means `1000 bit/s` (telecom convention used by the paper).
//! * Buffer sizes `kB`/`MB` are 1024-based ([`DataSize::from_kibibytes`]),
//!   matching the systems literature of the period.
//! * Device capacity `GB` is decimal (`10^9` bytes,
//!   [`DataSize::from_gigabytes`]), matching drive-vendor convention.
//!
//! All quantities are `f64`-backed: the model is continuous mathematics.
//! Exact integer bit layout (sector formatting) lives in `memstream-media`
//! and only converts to these types at the API boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod energy;
mod error;
mod parse;
mod power;
mod rate;
mod ratio;
mod time;

pub use data::DataSize;
pub use energy::{Energy, EnergyPerBit};
pub use error::QuantityError;
pub use parse::{ParseQuantityError, ParseQuantityReason};
pub use power::Power;
pub use rate::BitRate;
pub use ratio::Ratio;
pub use time::{Duration, Years, SECONDS_PER_YEAR};

/// Convenience prelude exporting every quantity type.
pub mod prelude {
    pub use crate::{
        BitRate, DataSize, Duration, Energy, EnergyPerBit, Power, QuantityError, Ratio, Years,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn quantities_are_send_sync() {
        assert_send_sync::<DataSize>();
        assert_send_sync::<BitRate>();
        assert_send_sync::<Duration>();
        assert_send_sync::<Power>();
        assert_send_sync::<Energy>();
        assert_send_sync::<EnergyPerBit>();
        assert_send_sync::<Ratio>();
        assert_send_sync::<Years>();
        assert_send_sync::<QuantityError>();
    }

    #[test]
    fn end_to_end_dimension_chain() {
        // Stream 1024 kbps out of a 20 KiB buffer: drain time, then energy at
        // standby power, then per-bit energy, reproduces hand arithmetic.
        let rate = BitRate::from_kbps(1024.0);
        let buffer = DataSize::from_kibibytes(20.0);
        let t = buffer / rate;
        assert!((t.seconds() - 20.0 * 1024.0 * 8.0 / 1_024_000.0).abs() < 1e-9);
        let e = Power::from_milliwatts(5.0) * t;
        let per_bit = e / buffer;
        let expected = 0.005 * t.seconds() / (20.0 * 1024.0 * 8.0);
        assert!((per_bit.joules_per_bit() - expected).abs() < 1e-15);
    }
}
