//! Lifetime as a function of buffer size: Eqs. (5) and (6) of §III-C,
//! generalised to any [`WearModelled`] device.
//!
//! The paper derives two wear laws for the MEMS store — spring duty
//! cycles (Eq. (5)) and probe write budgets (Eq. (6)). Both are instances
//! of a *wear channel*: a budget consumed at a buffer-dependent rate. The
//! model here folds any set of [`WearChannel`]s into years, which is how
//! the flash backend's erase-block budget reuses the machinery unchanged.

use std::fmt;

use memstream_device::{WearChannel, WearModelled};
use memstream_units::{DataSize, Ratio, Years};
use memstream_workload::Workload;

use crate::capacity::CapacityModel;
use crate::error::ModelError;
use crate::goal::Requirement;

/// Eq. (5) in its device-agnostic form: the lifetime of any component
/// rated for `rating` start/stop (duty) cycles, when the system performs
/// `T·rs/B` refills per year.
///
/// For the MEMS springs this is `Lsp`; for a disk drive the same formula
/// governs the head load/unload (start-stop) rating, which is how §III-C
/// concludes MEMS springs need a rating three orders of magnitude above
/// the disk's 10⁵ — their buffer is three orders of magnitude smaller.
///
/// # Panics
///
/// Panics if `rating` is not strictly positive or `buffer` is zero.
///
/// # Examples
///
/// ```
/// use memstream_core::duty_cycle_lifetime;
/// use memstream_units::{BitRate, DataSize};
/// use memstream_workload::Workload;
///
/// let w = Workload::paper_default(BitRate::from_kbps(1024.0));
/// // A disk with a 1e5 start-stop rating and a 1000x larger buffer lives
/// // exactly as long as a MEMS store with 1e8 springs:
/// let disk = duty_cycle_lifetime(1e5, DataSize::from_kibibytes(9000.0), &w);
/// let mems = duty_cycle_lifetime(1e8, DataSize::from_kibibytes(9.0), &w);
/// assert!((disk.get() / mems.get() - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn duty_cycle_lifetime(rating: f64, buffer: DataSize, workload: &Workload) -> Years {
    assert!(rating > 0.0, "duty-cycle rating must be positive");
    assert!(!buffer.is_zero(), "buffer must be positive");
    Years::new(rating * buffer.bits() / workload.bits_per_year())
}

/// Inverse of [`duty_cycle_lifetime`]: the smallest buffer for which a
/// component rated at `rating` cycles survives `target` years.
///
/// # Panics
///
/// Panics if `rating` is not strictly positive.
#[must_use]
pub fn min_buffer_for_duty_cycles(rating: f64, target: Years, workload: &Workload) -> DataSize {
    assert!(rating > 0.0, "duty-cycle rating must be positive");
    DataSize::from_bits(target.get() * workload.bits_per_year() / rating)
}

/// The wear model: every [`WearChannel`] of a [`WearModelled`] device
/// folded into years as a function of the buffer size.
///
/// For the MEMS device the channels are exactly §III-C's springs
/// (duty cycles, Eq. (5)) and probes (utilisation-scaled write budget,
/// Eq. (6)), and the legacy accessors ([`LifetimeModel::springs_lifetime`],
/// [`LifetimeModel::probes_lifetime`]) read them by kind. A flash device
/// contributes a single erase-budget channel instead.
///
/// ```
/// use memstream_core::LifetimeModel;
/// use memstream_device::MemsDevice;
/// use memstream_units::{BitRate, DataSize};
/// use memstream_workload::Workload;
///
/// let device = MemsDevice::table1();
/// let workload = Workload::paper_default(BitRate::from_kbps(1024.0));
/// let model = LifetimeModel::new(&device, workload, Default::default());
///
/// // Fig. 2b: ~90 kB of buffer buys 7 years of springs at the 1e8 rating.
/// let years = model.springs_lifetime(DataSize::from_kibibytes(92.0));
/// assert!((years.get() - 7.0).abs() < 0.2);
/// ```
/// The type parameter `W` defaults to the trait object, so existing
/// `LifetimeModel<'a>` signatures keep meaning "any device behind `&dyn`";
/// instantiating with a concrete device type monomorphizes the wear-channel
/// accessors for the grid's series fast path.
#[derive(Debug)]
pub struct LifetimeModel<'a, W: WearModelled + ?Sized = dyn WearModelled + 'a> {
    device: &'a W,
    workload: Workload,
    capacity: CapacityModel,
    channels: Vec<WearChannel>,
}

impl<W: WearModelled + ?Sized> Clone for LifetimeModel<'_, W> {
    fn clone(&self) -> Self {
        LifetimeModel {
            device: self.device,
            workload: self.workload,
            capacity: self.capacity,
            channels: self.channels.clone(),
        }
    }
}

impl<'a, W: WearModelled + ?Sized> LifetimeModel<'a, W> {
    /// Creates a lifetime model. The capacity model supplies `u(B)` for
    /// utilisation-scaled channels (and the sector size `S` of Eq. (6)).
    pub fn new(device: &'a W, workload: Workload, capacity: CapacityModel) -> Self {
        let channels = device.wear_channels();
        LifetimeModel {
            device,
            workload,
            capacity,
            channels,
        }
    }

    /// The device under model.
    #[must_use]
    pub fn device(&self) -> &W {
        self.device
    }

    /// The workload under model.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The device's wear channels, in device order.
    #[must_use]
    pub fn channels(&self) -> &[WearChannel] {
        &self.channels
    }

    /// Refill (seek + shutdown) cycles per year: `T · rs / B`.
    #[must_use]
    pub fn refills_per_year(&self, buffer: DataSize) -> f64 {
        self.workload.bits_per_year() / buffer.bits()
    }

    /// Lifetime of one channel at buffer `buffer`.
    #[must_use]
    pub fn channel_lifetime(&self, channel: &WearChannel, buffer: DataSize) -> Years {
        let w = self.workload.write_fraction().fraction();
        match *channel {
            WearChannel::DutyCycle { rating } => Years::new(rating / self.refills_per_year(buffer)),
            WearChannel::WriteBudget { budget_bits, .. } => {
                if w == 0.0 {
                    return Years::unbounded();
                }
                let u = self.capacity.utilization(buffer).fraction();
                Years::new(budget_bits * u / (w * self.workload.bits_per_year()))
            }
            WearChannel::EraseBudget {
                budget_bits,
                block_bits,
                waf_floor,
            } => {
                if w == 0.0 {
                    return Years::unbounded();
                }
                let waf = waf_floor + block_bits / buffer.bits();
                Years::new(budget_bits / (w * self.workload.bits_per_year() * waf))
            }
        }
    }

    /// The best lifetime any buffer can buy on one channel: duty cycles
    /// and erase budgets improve without bound as `B` grows — only the
    /// write-amplification floor caps the erase channel — while the
    /// write-budget channel saturates at the utilisation supremum.
    #[must_use]
    pub fn channel_lifetime_ceiling(&self, channel: &WearChannel) -> Years {
        let w = self.workload.write_fraction().fraction();
        match *channel {
            WearChannel::DutyCycle { .. } => Years::unbounded(),
            WearChannel::WriteBudget { budget_bits, .. } => {
                if w == 0.0 {
                    return Years::unbounded();
                }
                let u = self.capacity.utilization_supremum().fraction();
                Years::new(budget_bits * u / (w * self.workload.bits_per_year()))
            }
            WearChannel::EraseBudget {
                budget_bits,
                waf_floor,
                ..
            } => {
                if w == 0.0 {
                    return Years::unbounded();
                }
                Years::new(budget_bits / (w * self.workload.bits_per_year() * waf_floor))
            }
        }
    }

    /// The smallest buffer giving one channel at least `target` years, or
    /// `None` when the channel never binds under this workload (e.g. a
    /// write budget under a read-only stream).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] when no buffer reaches
    /// `target` on this channel (naming the channel's requirement).
    pub fn min_buffer_for_channel(
        &self,
        channel: &WearChannel,
        target: Years,
    ) -> Result<Option<DataSize>, ModelError> {
        let w = self.workload.write_fraction().fraction();
        match *channel {
            WearChannel::DutyCycle { rating } => Ok(Some(DataSize::from_bits(
                target.get() * self.workload.bits_per_year() / rating,
            ))),
            WearChannel::WriteBudget { .. } => self.min_buffer_for_write_budget(channel, target),
            WearChannel::EraseBudget {
                budget_bits,
                block_bits,
                waf_floor,
            } => {
                if w == 0.0 || target == Years::ZERO {
                    return Ok(None);
                }
                let headroom =
                    budget_bits / (target.get() * w * self.workload.bits_per_year()) - waf_floor;
                if headroom <= 0.0 {
                    return Err(ModelError::InfeasibleGoal {
                        requirement: Requirement::EraseLifetime,
                        reason: format!(
                            "erase blocks last at most {} at {} even at the \
                             write-amplification floor {waf_floor}",
                            self.channel_lifetime_ceiling(channel),
                            self.workload.rate(),
                        ),
                    });
                }
                Ok(Some(DataSize::from_bits(block_bits / headroom)))
            }
        }
    }

    /// Device lifetime `L = min` over every wear channel (§III-C's
    /// `min(Lsp, Lpb)` for the MEMS pair).
    #[must_use]
    pub fn device_lifetime(&self, buffer: DataSize) -> Years {
        self.channels
            .iter()
            .map(|c| self.channel_lifetime(c, buffer))
            .fold(Years::unbounded(), Years::min)
    }

    fn duty_channel(&self) -> Option<&WearChannel> {
        self.channels
            .iter()
            .find(|c| matches!(c, WearChannel::DutyCycle { .. }))
    }

    fn write_budget_channel(&self) -> Option<&WearChannel> {
        self.channels
            .iter()
            .find(|c| matches!(c, WearChannel::WriteBudget { .. }))
    }

    /// Eq. (5): springs lifetime in years, `Lsp(B) = Dsp · B / (T · rs)` —
    /// the device's duty-cycle channel. Unbounded if the device has none.
    #[must_use]
    pub fn springs_lifetime(&self, buffer: DataSize) -> Years {
        self.duty_channel()
            .map_or_else(Years::unbounded, |c| self.channel_lifetime(c, buffer))
    }

    /// Eq. (6): probes lifetime in years,
    /// `Lpb(B) = C · Dpb · B / (w · S · T · rs)` — the device's
    /// write-budget channel. Unbounded if the device has none.
    ///
    /// With `Su = B` this equals `C · Dpb · u(B) / (w · T · rs)`: probes
    /// lifetime follows the capacity-utilisation trend (the paper's
    /// observation under Fig. 2b). A read-only workload (`w = 0`) never
    /// wears the probes: the lifetime is unbounded.
    #[must_use]
    pub fn probes_lifetime(&self, buffer: DataSize) -> Years {
        self.write_budget_channel()
            .map_or_else(Years::unbounded, |c| self.channel_lifetime(c, buffer))
    }

    /// The probes-lifetime ceiling: the best lifetime any buffer can buy,
    /// reached as `u(B)` approaches its supremum. The vertical dashed line
    /// of Fig. 3b sits where this drops below the goal.
    #[must_use]
    pub fn probes_lifetime_ceiling(&self) -> Years {
        self.write_budget_channel()
            .map_or_else(Years::unbounded, |c| self.channel_lifetime_ceiling(c))
    }

    /// Inverse of Eq. (5): the smallest buffer giving the springs at least
    /// `target` years — `B ≥ L · T · rs / Dsp`. Zero if the device has no
    /// duty-cycle channel.
    #[must_use]
    pub fn min_buffer_for_springs(&self, target: Years) -> DataSize {
        match self.duty_channel() {
            Some(WearChannel::DutyCycle { rating }) => {
                DataSize::from_bits(target.get() * self.workload.bits_per_year() / rating)
            }
            _ => DataSize::ZERO,
        }
    }

    /// Inverse of Eq. (6): the smallest buffer giving the probes at least
    /// `target` years. Since `Lpb ∝ u(B)`, this reduces to the capacity
    /// inverse at the required utilisation. `None` when the probes never
    /// wear (read-only workload, or no write-budget channel).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] when even the utilisation
    /// supremum cannot buy `target` years — the hard rate limit the paper
    /// marks with a vertical dashed line in Fig. 3b.
    pub fn min_buffer_for_probes(&self, target: Years) -> Result<Option<DataSize>, ModelError> {
        match self.write_budget_channel() {
            Some(channel) => self.min_buffer_for_write_budget(channel, target),
            None => Ok(None),
        }
    }

    fn min_buffer_for_write_budget(
        &self,
        channel: &WearChannel,
        target: Years,
    ) -> Result<Option<DataSize>, ModelError> {
        let Some(required) = self.required_utilization_for_channel(channel, target)? else {
            return Ok(None);
        };
        self.capacity
            .min_buffer_for_utilization(required)
            .map(Some)
            .map_err(|e| match e {
                // Re-attribute: the capacity solver failed on behalf of the
                // probes requirement.
                ModelError::InfeasibleGoal { reason, .. } => ModelError::InfeasibleGoal {
                    requirement: Requirement::ProbesLifetime,
                    reason,
                },
                other => other,
            })
    }

    /// The utilisation the format must reach for the probes to survive
    /// `target` years (from `Lpb = C·Dpb·u/(w·T·rs)`), or `None` if the
    /// probes never wear under this workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] when even the utilisation
    /// supremum cannot buy `target` years.
    pub fn required_utilization_for_probes(
        &self,
        target: Years,
    ) -> Result<Option<Ratio>, ModelError> {
        match self.write_budget_channel() {
            Some(channel) => self.required_utilization_for_channel(channel, target),
            None => Ok(None),
        }
    }

    fn required_utilization_for_channel(
        &self,
        channel: &WearChannel,
        target: Years,
    ) -> Result<Option<Ratio>, ModelError> {
        let WearChannel::WriteBudget {
            rating,
            budget_bits,
        } = *channel
        else {
            return Ok(None);
        };
        let w = self.workload.write_fraction().fraction();
        if w == 0.0 || target == Years::ZERO {
            return Ok(None); // read-only streams never wear probes out
        }
        let required_u = target.get() * w * self.workload.bits_per_year() / budget_bits;
        if required_u >= self.capacity.utilization_supremum().fraction() {
            return Err(ModelError::InfeasibleGoal {
                requirement: Requirement::ProbesLifetime,
                reason: format!(
                    "probes last at most {} at {} even at full utilisation \
                     (rating {} write cycles)",
                    self.channel_lifetime_ceiling(channel),
                    self.workload.rate(),
                    rating
                ),
            });
        }
        if required_u <= 0.0 {
            return Ok(None);
        }
        Ok(Some(Ratio::from_fraction(required_u)))
    }
}

impl LifetimeModel<'_> {
    /// The requirement a channel dictates under (the Fig. 3 region label).
    ///
    /// Lives on the default (`dyn`) instantiation so bare
    /// `LifetimeModel::channel_requirement(..)` paths keep resolving — the
    /// answer does not depend on the device type.
    #[must_use]
    pub fn channel_requirement(channel: &WearChannel) -> Requirement {
        match channel {
            WearChannel::DutyCycle { .. } => Requirement::SpringsLifetime,
            WearChannel::WriteBudget { .. } => Requirement::ProbesLifetime,
            WearChannel::EraseBudget { .. } => Requirement::EraseLifetime,
        }
    }
}

impl<W: WearModelled + ?Sized> fmt::Display for LifetimeModel<'_, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lifetime model: {} wear channel(s), {}",
            self.channels.len(),
            self.workload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_device::{FlashDevice, MemsDevice};
    use memstream_units::BitRate;
    use proptest::prelude::*;

    fn model(device: &MemsDevice, kbps: f64) -> LifetimeModel<'_> {
        LifetimeModel::new(
            device,
            Workload::paper_default(BitRate::from_kbps(kbps)),
            CapacityModel::paper_default(),
        )
    }

    fn flash_model(device: &FlashDevice, kbps: f64) -> LifetimeModel<'_> {
        LifetimeModel::new(
            device,
            Workload::paper_default(BitRate::from_kbps(kbps)),
            CapacityModel::constant(
                Ratio::from_fraction(device.fixed_utilization()),
                device.capacity(),
            ),
        )
    }

    #[test]
    fn fig2b_springs_limit_about_4_years_in_plot_range() {
        // Fig. 2b: within the 0-45 kB plot the 1e8 springs cap the device
        // at ~4 years.
        let d = MemsDevice::table1();
        let m = model(&d, 1024.0);
        let years = m.springs_lifetime(DataSize::from_kibibytes(45.0));
        assert!((3.0..4.5).contains(&years.get()), "got {years}");
    }

    #[test]
    fn fig2b_seven_years_needs_about_90_kib() {
        // §IV-B: "about 90 kB is required to attain a 7-year lifetime".
        let d = MemsDevice::table1();
        let m = model(&d, 1024.0);
        let b = m.min_buffer_for_springs(Years::new(7.0));
        assert!(
            (85.0..100.0).contains(&b.kibibytes()),
            "got {} KiB",
            b.kibibytes()
        );
        assert!((m.springs_lifetime(b).get() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fig2b_probes_lifetime_about_20_years() {
        // Fig. 2b: the probes curve saturates near ~20 years at Dpb = 100.
        let d = MemsDevice::table1();
        let m = model(&d, 1024.0);
        let years = m.probes_lifetime(DataSize::from_kibibytes(45.0));
        assert!((17.0..22.0).contains(&years.get()), "got {years}");
    }

    #[test]
    fn probes_lifetime_follows_capacity_trend() {
        // §IV-B: "probes lifetime follows the capacity trend".
        let d = MemsDevice::table1();
        let m = model(&d, 1024.0);
        let cap = CapacityModel::paper_default();
        let b1 = DataSize::from_kibibytes(2.0);
        let b2 = DataSize::from_kibibytes(20.0);
        let ratio_life = m.probes_lifetime(b2).get() / m.probes_lifetime(b1).get();
        let ratio_u = cap.utilization(b2).fraction() / cap.utilization(b1).fraction();
        assert!((ratio_life - ratio_u).abs() < 1e-9);
    }

    #[test]
    fn silicon_springs_remove_the_constraint() {
        // Fig. 3c: at Dsp = 1e12 the springs need only ~9 bytes for 7 years
        // at 1024 kbps — they vanish from the design space.
        let d = MemsDevice::table1().with_spring_duty_cycles(1e12);
        let m = model(&d, 1024.0);
        let b = m.min_buffer_for_springs(Years::new(7.0));
        assert!(b.kibibytes() < 0.1, "got {} KiB", b.kibibytes());
    }

    #[test]
    fn doubling_probe_rating_doubles_the_ceiling() {
        let d100 = MemsDevice::table1();
        let d200 = MemsDevice::table1().with_probe_write_cycles(200.0);
        let m100 = model(&d100, 1024.0);
        let m200 = model(&d200, 1024.0);
        let ratio = m200.probes_lifetime_ceiling().get() / m100.probes_lifetime_ceiling().get();
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn probes_goal_infeasible_at_high_rate_with_low_rating() {
        // The Fig. 3b vertical line: at a high enough rate, 7 years is
        // beyond the probes no matter the buffer.
        let d = MemsDevice::table1();
        let m = model(&d, 4096.0);
        let err = m.min_buffer_for_probes(Years::new(7.0)).unwrap_err();
        match err {
            ModelError::InfeasibleGoal { requirement, .. } => {
                assert_eq!(requirement, Requirement::ProbesLifetime);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn probes_goal_feasible_after_rating_doubles() {
        // Fig. 3c: doubling Dpb to 200 admits the whole 32-4096 kbps range.
        let d = MemsDevice::table1().with_probe_write_cycles(200.0);
        let m = model(&d, 4096.0);
        assert!(m.min_buffer_for_probes(Years::new(7.0)).is_ok());
    }

    #[test]
    fn read_only_workload_never_wears_probes() {
        let d = MemsDevice::table1();
        let w = Workload::new(
            memstream_workload::StreamSpec::read_only(BitRate::from_kbps(1024.0)).unwrap(),
            memstream_workload::PlaybackCalendar::paper_default(),
            Ratio::from_percent(5.0),
        )
        .unwrap();
        let m = LifetimeModel::new(&d, w, CapacityModel::paper_default());
        assert!(m
            .probes_lifetime(DataSize::from_kibibytes(10.0))
            .is_unbounded());
        assert_eq!(m.min_buffer_for_probes(Years::new(7.0)).unwrap(), None);
    }

    #[test]
    fn device_lifetime_is_componentwise_minimum() {
        let d = MemsDevice::table1();
        let m = model(&d, 1024.0);
        let b = DataSize::from_kibibytes(20.0);
        let l = m.device_lifetime(b);
        assert_eq!(l, m.springs_lifetime(b).min(m.probes_lifetime(b)));
    }

    #[test]
    fn duty_cycle_functions_roundtrip() {
        let w = Workload::paper_default(BitRate::from_kbps(1024.0));
        let b = min_buffer_for_duty_cycles(1e5, Years::new(7.0), &w);
        // A disk-class 1e5 rating needs an MB-scale buffer for 7 years.
        assert!(
            (85.0..95.0).contains(&b.mebibytes()),
            "{} MiB",
            b.mebibytes()
        );
        let back = duty_cycle_lifetime(1e5, b, &w);
        assert!((back.get() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn springs_lifetime_agrees_with_generic_form() {
        let d = MemsDevice::table1();
        let m = model(&d, 1024.0);
        let w = Workload::paper_default(BitRate::from_kbps(1024.0));
        let b = DataSize::from_kibibytes(45.0);
        assert!(
            (m.springs_lifetime(b).get() - duty_cycle_lifetime(1e8, b, &w).get()).abs() < 1e-12
        );
    }

    #[test]
    fn three_orders_rating_compensates_three_orders_buffer() {
        // SIII-C.1: "the springs must have a duty-cycle rating that is
        // three orders of magnitude larger than that of the disk drive."
        let w = Workload::paper_default(BitRate::from_kbps(1024.0));
        let disk = duty_cycle_lifetime(1e5, DataSize::from_mebibytes(2.5), &w);
        let mems = duty_cycle_lifetime(1e8, DataSize::from_kibibytes(2.56), &w);
        assert!((disk.get() / mems.get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn erase_channel_lifetime_grows_with_buffer() {
        // Write amplification shrinks as the buffer grows, so erase-block
        // lifetime is monotone increasing in B.
        let d = FlashDevice::mobile_mlc();
        let m = flash_model(&d, 1024.0);
        let small = m.device_lifetime(DataSize::from_kibibytes(8.0));
        let large = m.device_lifetime(DataSize::from_kibibytes(128.0));
        assert!(large.get() > small.get(), "{small} !< {large}");
        // And it is capped by the write-amplification floor.
        let ceiling = m.channel_lifetime_ceiling(&m.channels()[0]);
        assert!(m.device_lifetime(DataSize::from_mebibytes(64.0)).get() <= ceiling.get() + 1e-9);
    }

    #[test]
    fn erase_channel_inversion_meets_the_target() {
        let d = FlashDevice::mobile_mlc();
        let m = flash_model(&d, 1024.0);
        let channel = m.channels()[0];
        let b = m
            .min_buffer_for_channel(&channel, Years::new(7.0))
            .unwrap()
            .expect("writes wear flash");
        assert!(m.channel_lifetime(&channel, b).get() >= 7.0 - 1e-9);
        // Slightly below the answer the target is missed.
        assert!(m.channel_lifetime(&channel, b * 0.95).get() < 7.0);
    }

    #[test]
    fn erase_channel_infeasible_target_names_erase_lifetime() {
        let d = FlashDevice::mobile_mlc();
        let m = flash_model(&d, 4096.0);
        let channel = m.channels()[0];
        let ceiling = m.channel_lifetime_ceiling(&channel);
        let err = m
            .min_buffer_for_channel(&channel, Years::new(ceiling.get() * 2.0))
            .unwrap_err();
        match err {
            ModelError::InfeasibleGoal { requirement, .. } => {
                assert_eq!(requirement, Requirement::EraseLifetime);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    proptest! {
        #[test]
        fn springs_lifetime_linear_in_buffer(kib in 0.1..1000.0f64) {
            let d = MemsDevice::table1();
            let m = model(&d, 1024.0);
            let l1 = m.springs_lifetime(DataSize::from_kibibytes(kib)).get();
            let l2 = m.springs_lifetime(DataSize::from_kibibytes(kib * 3.0)).get();
            prop_assert!((l2 / l1 - 3.0).abs() < 1e-9);
        }

        #[test]
        fn springs_inverse_roundtrips(years in 0.1..50.0f64, kbps in 32.0..4096.0f64) {
            let d = MemsDevice::table1();
            let m = model(&d, kbps);
            let b = m.min_buffer_for_springs(Years::new(years));
            prop_assert!((m.springs_lifetime(b).get() - years).abs() < years * 1e-9);
        }

        #[test]
        fn probes_inverse_meets_target_when_feasible(years in 0.5..15.0f64) {
            let d = MemsDevice::table1();
            let m = model(&d, 1024.0);
            if let Ok(Some(b)) = m.min_buffer_for_probes(Years::new(years)) {
                prop_assert!(m.probes_lifetime(b).get() >= years - 1e-9);
            }
        }

        #[test]
        fn lifetime_ceiling_bounds_all_buffers(kib in 0.1..10_000.0f64) {
            let d = MemsDevice::table1();
            let m = model(&d, 1024.0);
            let l = m.probes_lifetime(DataSize::from_kibibytes(kib));
            prop_assert!(l.get() <= m.probes_lifetime_ceiling().get() + 1e-9);
        }

        #[test]
        fn erase_lifetime_monotone_in_buffer(kib in 1.0..5000.0f64) {
            let d = FlashDevice::mobile_mlc();
            let m = flash_model(&d, 1024.0);
            let l1 = m.device_lifetime(DataSize::from_kibibytes(kib));
            let l2 = m.device_lifetime(DataSize::from_kibibytes(kib * 1.5));
            prop_assert!(l2.get() >= l1.get());
        }
    }
}
