//! Design-space exploration sweeps: the data behind Fig. 2 and Fig. 3.

use memstream_units::{BitRate, DataSize, EnergyPerBit, Ratio, Years};

use crate::device_model::AnalyticModel;
use crate::dimension::BufferPlan;
use crate::error::ModelError;
use crate::goal::DesignGoal;
use crate::system::SystemModel;

/// One sample of the buffer sweep (Fig. 2): every modelled property at a
/// fixed stream rate and buffer size.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSweepPoint {
    /// The buffer size sampled.
    pub buffer: DataSize,
    /// `Em(B)`, if the buffer sustains a cycle at all.
    pub energy_per_bit: Option<EnergyPerBit>,
    /// Energy saving versus always-on, if the cycle exists.
    pub saving: Option<f64>,
    /// Capacity utilisation `u(B)`.
    pub utilization: Ratio,
    /// Effective user capacity at this utilisation.
    pub effective_capacity: DataSize,
    /// Springs lifetime (Eq. (5)).
    pub springs_lifetime: Years,
    /// Probes lifetime (Eq. (6)).
    pub probes_lifetime: Years,
}

/// One sample of the rate sweep (Fig. 3): the dimensioning answer at one
/// stream rate.
#[derive(Debug, Clone)]
pub struct RateSweepPoint {
    /// The stream rate sampled.
    pub rate: BitRate,
    /// The minimal-required-buffer answer (or the infeasibility statement —
    /// the "X" region of Fig. 3a).
    pub plan: Result<BufferPlan, ModelError>,
    /// The energy-efficiency buffer alone (the dashed curve of Fig. 3),
    /// when an energy goal is present and feasible.
    pub energy_buffer: Option<DataSize>,
}

impl RateSweepPoint {
    /// The dominant-requirement label for the region bar of Fig. 3
    /// (`"X"` when infeasible).
    #[must_use]
    pub fn region_label(&self) -> &'static str {
        match &self.plan {
            Ok(plan) => plan.dominant().label(),
            Err(_) => "X",
        }
    }
}

/// Sweep construction on top of any [`AnalyticModel`] — the concrete
/// [`SystemModel`] or a capability-assembled
/// [`CapabilityModel`](crate::CapabilityModel).
///
/// ```
/// use memstream_core::{DesignGoal, SweepBuilder, SystemModel};
/// use memstream_units::BitRate;
///
/// let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
/// let sweep = SweepBuilder::new(&model);
/// let fig3b = sweep.rate_sweep(
///     &DesignGoal::fig3b(),
///     memstream_core::log_spaced_rates(32.0, 4096.0, 25),
/// );
/// assert_eq!(fig3b.len(), 25);
/// ```
#[derive(Debug, Clone)]
pub struct SweepBuilder<'a, M = SystemModel> {
    model: &'a M,
}

impl<'a, M: AnalyticModel> SweepBuilder<'a, M> {
    /// Creates a sweep builder over `model`.
    #[must_use]
    pub fn new(model: &'a M) -> Self {
        SweepBuilder { model }
    }

    /// Samples every modelled property over the given buffer sizes at the
    /// model's stream rate — the Fig. 2 data.
    #[must_use]
    pub fn buffer_sweep(
        &self,
        buffers: impl IntoIterator<Item = DataSize>,
    ) -> Vec<BufferSweepPoint> {
        let energy = self.model.energy_model();
        let capacity = self.model.capacity_model();
        let lifetime = self.model.lifetime_model();
        buffers
            .into_iter()
            .map(|buffer| BufferSweepPoint {
                buffer,
                energy_per_bit: energy.per_bit_energy(buffer).ok(),
                saving: energy.saving(buffer).ok(),
                utilization: capacity.utilization(buffer),
                effective_capacity: capacity.effective_capacity(buffer),
                springs_lifetime: lifetime.springs_lifetime(buffer),
                probes_lifetime: lifetime.probes_lifetime(buffer),
            })
            .collect()
    }

    /// The Fig. 2 x-axis: 1–20× the break-even buffer, `n` points.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the break-even computation.
    pub fn break_even_multiples(&self, n: usize) -> Result<Vec<DataSize>, ModelError> {
        let be = self.model.break_even_buffer()?;
        Ok((0..n)
            .map(|i| {
                let factor = 1.0 + 19.0 * (i as f64) / ((n - 1).max(1) as f64);
                be * factor
            })
            .collect())
    }

    /// Dimensions the goal at every rate — the Fig. 3 data.
    #[must_use]
    pub fn rate_sweep(
        &self,
        goal: &DesignGoal,
        rates: impl IntoIterator<Item = BitRate>,
    ) -> Vec<RateSweepPoint> {
        rates
            .into_iter()
            .map(|rate| {
                let at_rate = self.model.with_rate(rate);
                let plan = at_rate.dimension(goal);
                let energy_buffer = goal
                    .energy_saving_target()
                    .and_then(|e| at_rate.energy_model().min_buffer_for_saving(e).ok());
                RateSweepPoint {
                    rate,
                    plan,
                    energy_buffer,
                }
            })
            .collect()
    }
}

/// A cell of the feasibility map: which requirement dictates (or fails)
/// at one (rate, saving-goal) point. Encoded as the Fig. 3 region label.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityMap {
    /// Stream rates along the x axis.
    pub rates: Vec<BitRate>,
    /// Saving targets along the y axis.
    pub savings: Vec<Ratio>,
    /// `cells[y][x]`: the dominant-requirement label at `(rates[x],
    /// savings[y])`, `"X"` if infeasible.
    pub cells: Vec<Vec<&'static str>>,
}

impl FeasibilityMap {
    /// Renders the map as rows of single-character region codes
    /// (C/E/s/p/X), one row per saving target, highest saving first.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let code = |label: &str| match label {
            "C" => 'C',
            "E" => 'E',
            "Lsp" => 's',
            "Lpb" => 'p',
            _ => 'X',
        };
        let mut out = String::new();
        for (y, saving) in self.savings.iter().enumerate().rev() {
            let _ = write!(out, "E = {:>5.1}% |", saving.percent());
            for cell in &self.cells[y] {
                out.push(code(cell));
            }
            out.push('\n');
        }
        let _ = writeln!(out, "           +{}", "-".repeat(self.rates.len()));
        let _ = writeln!(
            out,
            "            {} .. {} (log)",
            self.rates.first().expect("non-empty"),
            self.rates.last().expect("non-empty")
        );
        let _ = writeln!(
            out,
            "  C capacity, E energy, s springs, p probes, X infeasible"
        );
        out
    }
}

/// Builds the feasibility map over a (rate × saving) grid with the given
/// capacity and lifetime targets held fixed — a 2-D extension of Fig. 3's
/// 1-D region bar.
///
/// # Panics
///
/// Panics if either grid is empty.
#[must_use]
pub fn feasibility_map(
    model: &SystemModel,
    rates: Vec<BitRate>,
    savings: Vec<Ratio>,
    capacity: Ratio,
    lifetime: memstream_units::Years,
) -> FeasibilityMap {
    assert!(
        !rates.is_empty() && !savings.is_empty(),
        "grids must be non-empty"
    );
    let cells = savings
        .iter()
        .map(|&saving| {
            let goal = DesignGoal::new()
                .energy_saving(saving)
                .capacity_utilization(capacity)
                .lifetime(lifetime);
            rates
                .iter()
                .map(|&rate| match model.with_rate(rate).dimension(&goal) {
                    Ok(plan) => plan.dominant().label(),
                    Err(_) => "X",
                })
                .collect()
        })
        .collect();
    FeasibilityMap {
        rates,
        savings,
        cells,
    }
}

/// Logarithmically spaced stream rates between `min_kbps` and `max_kbps`
/// inclusive — the x-axis of Fig. 3.
///
/// # Panics
///
/// Panics if the bounds are non-positive, inverted, or `n < 2`.
#[must_use]
pub fn log_spaced_rates(min_kbps: f64, max_kbps: f64, n: usize) -> Vec<BitRate> {
    assert!(min_kbps > 0.0 && max_kbps > min_kbps, "invalid rate bounds");
    assert!(n >= 2, "need at least two samples");
    let log_min = min_kbps.ln();
    let log_max = max_kbps.ln();
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            BitRate::from_kbps((log_min + f * (log_max - log_min)).exp())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Requirement;

    fn model() -> SystemModel {
        SystemModel::paper_default(BitRate::from_kbps(1024.0))
    }

    #[test]
    fn log_spaced_rates_hit_both_ends() {
        let rates = log_spaced_rates(32.0, 4096.0, 8);
        assert_eq!(rates.len(), 8);
        assert!((rates[0].kilobits_per_second() - 32.0).abs() < 1e-9);
        assert!((rates[7].kilobits_per_second() - 4096.0).abs() < 1e-6);
        for pair in rates.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn buffer_sweep_reproduces_fig2_shape() {
        let m = model();
        let sweep = SweepBuilder::new(&m);
        let buffers = sweep.break_even_multiples(20).unwrap();
        let points = sweep.buffer_sweep(buffers);
        // Energy falls monotonically over the 1-20x break-even range...
        let energies: Vec<f64> = points
            .iter()
            .filter_map(|p| p.energy_per_bit.map(|e| e.nanojoules_per_bit()))
            .collect();
        assert!(energies.len() >= 19);
        for pair in energies.windows(2) {
            assert!(pair[1] < pair[0]);
        }
        // ...while utilisation and both lifetimes rise (weakly).
        assert!(points.last().unwrap().utilization > points[0].utilization);
        assert!(points.last().unwrap().springs_lifetime.get() > points[0].springs_lifetime.get());
    }

    #[test]
    fn fig2_x_axis_tops_out_around_45_kib() {
        // 20x the ~2.3 KiB break-even at 1024 kbps is ~45 KiB, the x-range
        // of Fig. 2.
        let m = model();
        let sweep = SweepBuilder::new(&m);
        let buffers = sweep.break_even_multiples(20).unwrap();
        let top = buffers.last().unwrap().kibibytes();
        assert!((40.0..50.0).contains(&top), "got {top} KiB");
    }

    #[test]
    fn rate_sweep_shows_fig3a_regions() {
        // Fig. 3a: C at low rates, E after, X past the energy limit.
        let m = model();
        let sweep = SweepBuilder::new(&m);
        let points = sweep.rate_sweep(&DesignGoal::fig3a(), log_spaced_rates(32.0, 4096.0, 30));
        let labels: Vec<&str> = points.iter().map(RateSweepPoint::region_label).collect();
        assert_eq!(labels.first().copied(), Some("C"));
        assert!(labels.contains(&"E"));
        assert_eq!(labels.last().copied(), Some("X"));
        // Regions appear in the paper's order: C, then E, then X.
        let first_e = labels.iter().position(|l| *l == "E").unwrap();
        let first_x = labels.iter().position(|l| *l == "X").unwrap();
        let last_c = labels.iter().rposition(|l| *l == "C").unwrap();
        assert!(last_c < first_e && first_e < first_x);
    }

    #[test]
    fn rate_sweep_fig3b_has_no_energy_region() {
        // Fig. 3b: "energy has no word on buffer size for this goal".
        let m = model();
        let sweep = SweepBuilder::new(&m);
        let points = sweep.rate_sweep(&DesignGoal::fig3b(), log_spaced_rates(32.0, 1400.0, 20));
        for p in &points {
            let label = p.region_label();
            assert!(label == "C" || label == "Lsp", "unexpected region {label}");
        }
        // And the energy-efficiency buffer sits 1-2 orders of magnitude
        // below the required buffer over the region ("a difference of 1 to
        // 2 orders of magnitude", §IV-C).
        let max_ratio = points
            .iter()
            .filter_map(|p| {
                let plan = p.plan.as_ref().ok()?;
                Some(plan.buffer() / p.energy_buffer?)
            })
            .fold(0.0, f64::max);
        assert!(max_ratio > 10.0, "max required/energy ratio {max_ratio}");
        let last = points.last().unwrap();
        let ratio = last.plan.as_ref().unwrap().buffer() / last.energy_buffer.unwrap();
        assert!(ratio > 3.0, "required/energy buffer ratio {ratio}");
    }

    #[test]
    fn fig3c_device_removes_lifetime_regions() {
        // Fig. 3c: Dpb = 200, Dsp = 1e12 — only C and E remain.
        let m = model().with_device(
            memstream_device::MemsDevice::table1()
                .with_probe_write_cycles(200.0)
                .with_spring_duty_cycles(1e12),
        );
        let sweep = SweepBuilder::new(&m);
        let points = sweep.rate_sweep(&DesignGoal::fig3b(), log_spaced_rates(32.0, 4096.0, 25));
        for p in &points {
            let label = p.region_label();
            assert!(label == "C" || label == "E", "unexpected region {label}");
        }
        // Both regions are present (capacity at low rate, energy at high).
        assert!(points.iter().any(|p| p.region_label() == "E"));
        assert!(points.iter().any(|p| p.region_label() == "C"));
    }

    #[test]
    fn lower_capacity_goal_shrinks_capacity_region() {
        // §IV-C: "If the designer opts for lower capacity, say C = 85%, the
        // domination range of C decreases."
        let m = model();
        let sweep = SweepBuilder::new(&m);
        let rates = log_spaced_rates(32.0, 1200.0, 25);
        let count_c = |goal: &DesignGoal| {
            sweep
                .rate_sweep(goal, rates.clone())
                .iter()
                .filter(|p| p.region_label() == "C")
                .count()
        };
        let at_88 = count_c(&DesignGoal::fig3a());
        let at_85 = count_c(
            &DesignGoal::new()
                .energy_saving(memstream_units::Ratio::from_percent(80.0))
                .capacity_utilization(memstream_units::Ratio::from_percent(85.0))
                .lifetime(Years::new(7.0)),
        );
        assert!(at_85 < at_88, "C region: 85% -> {at_85}, 88% -> {at_88}");
    }

    #[test]
    fn feasibility_map_matches_the_region_bars() {
        let m = model();
        let rates = log_spaced_rates(32.0, 4096.0, 20);
        let savings = vec![Ratio::from_percent(70.0), Ratio::from_percent(80.0)];
        let map = feasibility_map(
            &m,
            rates.clone(),
            savings,
            Ratio::from_percent(88.0),
            Years::new(7.0),
        );
        // Row 0 (70%) must match the Fig. 3b sweep, row 1 (80%) Fig. 3a.
        let sweep = SweepBuilder::new(&m);
        let fig3b: Vec<&str> = sweep
            .rate_sweep(&DesignGoal::fig3b(), rates.clone())
            .iter()
            .map(RateSweepPoint::region_label)
            .collect();
        let fig3a: Vec<&str> = sweep
            .rate_sweep(&DesignGoal::fig3a(), rates)
            .iter()
            .map(RateSweepPoint::region_label)
            .collect();
        assert_eq!(map.cells[0], fig3b);
        assert_eq!(map.cells[1], fig3a);
    }

    #[test]
    fn feasibility_map_renders_legend_and_rows() {
        let m = model();
        let map = feasibility_map(
            &m,
            log_spaced_rates(32.0, 4096.0, 10),
            vec![Ratio::from_percent(60.0), Ratio::from_percent(80.0)],
            Ratio::from_percent(88.0),
            Years::new(7.0),
        );
        let text = map.render();
        assert!(text.contains("E =  80.0% |"));
        assert!(text.contains("X infeasible"));
        assert_eq!(text.matches('|').count(), 2);
    }

    #[test]
    fn infeasible_points_name_the_failing_requirement() {
        let m = model();
        let sweep = SweepBuilder::new(&m);
        let points = sweep.rate_sweep(&DesignGoal::fig3a(), vec![BitRate::from_kbps(4096.0)]);
        match &points[0].plan {
            Err(ModelError::InfeasibleGoal { requirement, .. }) => {
                assert_eq!(*requirement, Requirement::Energy);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }
}
