//! The refill cycle of Fig. 1b: timing decomposition of one period `Tm`.

use std::fmt;

use memstream_device::EnergyModelled;
use memstream_units::{DataSize, Duration, Ratio};
use memstream_workload::Workload;

use crate::error::ModelError;

/// How the 5 % best-effort reservation of §IV-A is charged to the energy
/// account. See `DESIGN.md` §4.2 for the calibration rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BestEffortPolicy {
    /// Best-effort time is served at read/write power (the device is
    /// transferring on behalf of the OS). This reproduces the paper's
    /// Fig. 3a finding that an 80 % saving becomes infeasible slightly
    /// above 1000 kbps. **Default.**
    #[default]
    AtReadWrite,
    /// Best-effort time is spent at idle power.
    AtIdle,
    /// Ignore best-effort in both the time and the energy account
    /// (the pre-refinement model of Khatib's thesis).
    Excluded,
}

impl fmt::Display for BestEffortPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BestEffortPolicy::AtReadWrite => "best-effort at read/write power",
            BestEffortPolicy::AtIdle => "best-effort at idle power",
            BestEffortPolicy::Excluded => "best-effort excluded",
        };
        f.write_str(name)
    }
}

/// Timing decomposition of one refill cycle (Fig. 1b).
///
/// Every cycle, the buffer `B` drains at `rs` while the device:
/// seeks (`tsk`), refills the buffer at net rate `rm − rs` (`tRW`), serves
/// best-effort requests, shuts down (`tsd`) and sleeps in standby for the
/// remainder. The cycle period is `Tm = B/(rm − rs) · rm/rs` (Eq. (1)).
///
/// ```
/// use memstream_core::{BestEffortPolicy, RefillCycle};
/// use memstream_device::MemsDevice;
/// use memstream_units::{BitRate, DataSize};
/// use memstream_workload::Workload;
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let device = MemsDevice::table1();
/// let workload = Workload::paper_default(BitRate::from_kbps(1024.0));
/// let cycle = RefillCycle::compute(
///     &device,
///     &workload,
///     DataSize::from_kibibytes(20.0),
///     BestEffortPolicy::AtReadWrite,
/// )?;
/// assert!(cycle.standby_time() > cycle.overhead_time());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefillCycle {
    buffer: DataSize,
    period: Duration,
    read_write_time: Duration,
    overhead_time: Duration,
    best_effort_time: Duration,
    standby_time: Duration,
    policy: BestEffortPolicy,
}

impl RefillCycle {
    /// Computes the cycle decomposition for a buffer of size `buffer`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::RateExceedsBandwidth`] if the stream rate (plus the
    ///   best-effort reservation) exceeds the media rate.
    /// * [`ModelError::BufferBelowCycleMinimum`] if the buffer cannot cover
    ///   the seek + shutdown + best-effort time of a single cycle.
    pub fn compute<E: EnergyModelled + ?Sized>(
        device: &E,
        workload: &Workload,
        buffer: DataSize,
        policy: BestEffortPolicy,
    ) -> Result<Self, ModelError> {
        let rs = workload.rate();
        let rm = device.media_rate();
        let be = effective_best_effort(workload, policy);

        // The refill must outrun the drain even after the reservation.
        let available = rm * (1.0 - be.fraction());
        if rs >= available {
            return Err(ModelError::RateExceedsBandwidth {
                stream_bps: rs.bits_per_second(),
                available_bps: available.bits_per_second(),
            });
        }

        // Tm = B/(rm - rs) * rm/rs ; tRW = B/(rm - rs).
        let t_rw = buffer / (rm - rs);
        let period = t_rw * (rm / rs);
        let t_oh = device.overhead_time();
        let t_be = period * be;

        let active = t_rw + t_oh + t_be;
        if active > period {
            let minimum = Self::min_buffer(device, workload, policy)?;
            return Err(ModelError::BufferBelowCycleMinimum {
                buffer_bits: buffer.bits(),
                minimum_bits: minimum.bits(),
            });
        }

        Ok(RefillCycle {
            buffer,
            period,
            read_write_time: t_rw,
            overhead_time: t_oh,
            best_effort_time: t_be,
            standby_time: period - active,
            policy,
        })
    }

    /// The smallest buffer for which a full cycle (seek + refill +
    /// best-effort + shutdown) fits into the period: the absolute floor on
    /// any buffer the model will accept.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RateExceedsBandwidth`] if no buffer works at
    /// this stream rate.
    pub fn min_buffer<E: EnergyModelled + ?Sized>(
        device: &E,
        workload: &Workload,
        policy: BestEffortPolicy,
    ) -> Result<DataSize, ModelError> {
        let rs = workload.rate();
        let rm = device.media_rate();
        let be = effective_best_effort(workload, policy).fraction();
        // (1 - be) * Tm >= tRW + toh, with Tm = B*tau, tRW = B*rho:
        // B >= toh / ((1 - be) * tau - rho).
        let tau = per_bit_period(device, workload);
        let rho = 1.0 / (rm - rs).bits_per_second();
        let denom = (1.0 - be) * tau - rho;
        if denom <= 0.0 {
            return Err(ModelError::RateExceedsBandwidth {
                stream_bps: rs.bits_per_second(),
                available_bps: (rm * (1.0 - be)).bits_per_second(),
            });
        }
        Ok(DataSize::from_bits(
            device.overhead_time().seconds() / denom,
        ))
    }

    /// The buffer size `B`.
    #[must_use]
    pub fn buffer(&self) -> DataSize {
        self.buffer
    }

    /// The cycle period `Tm`.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Refill (read/write) time `tRW`.
    #[must_use]
    pub fn read_write_time(&self) -> Duration {
        self.read_write_time
    }

    /// Seek + shutdown overhead time `toh`.
    #[must_use]
    pub fn overhead_time(&self) -> Duration {
        self.overhead_time
    }

    /// Time serving best-effort requests this cycle.
    #[must_use]
    pub fn best_effort_time(&self) -> Duration {
        self.best_effort_time
    }

    /// Standby (deep sleep) time `tsb`.
    #[must_use]
    pub fn standby_time(&self) -> Duration {
        self.standby_time
    }

    /// The policy the cycle was computed under.
    #[must_use]
    pub fn policy(&self) -> BestEffortPolicy {
        self.policy
    }

    /// Refills per year of playback: `T · rs / B` (Eqs. (5)–(6)).
    #[must_use]
    pub fn refills_per_year(&self, workload: &Workload) -> f64 {
        workload.bits_per_year() / self.buffer.bits()
    }

    /// The duty fraction the device spends outside standby.
    #[must_use]
    pub fn active_fraction(&self) -> Ratio {
        Ratio::from_fraction(((self.period - self.standby_time) / self.period).clamp(0.0, 1.0))
    }
}

impl fmt::Display for RefillCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: rw {}, overhead {}, best-effort {}, standby {}",
            self.period,
            self.read_write_time,
            self.overhead_time,
            self.best_effort_time,
            self.standby_time
        )
    }
}

/// `τ = Tm / B = rm / (rs · (rm − rs))` seconds per buffered bit.
pub(crate) fn per_bit_period<E: EnergyModelled + ?Sized>(device: &E, workload: &Workload) -> f64 {
    let rm = device.media_rate().bits_per_second();
    let rs = workload.rate().bits_per_second();
    rm / (rs * (rm - rs))
}

/// `ρ = tRW / B = 1 / (rm − rs)` seconds per buffered bit.
pub(crate) fn per_bit_read_write<E: EnergyModelled + ?Sized>(
    device: &E,
    workload: &Workload,
) -> f64 {
    let rm = device.media_rate().bits_per_second();
    let rs = workload.rate().bits_per_second();
    1.0 / (rm - rs)
}

/// The best-effort fraction actually charged under `policy`.
pub(crate) fn effective_best_effort(workload: &Workload, policy: BestEffortPolicy) -> Ratio {
    match policy {
        BestEffortPolicy::Excluded => Ratio::ZERO,
        BestEffortPolicy::AtIdle | BestEffortPolicy::AtReadWrite => workload.best_effort_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_device::MemsDevice;
    use memstream_units::BitRate;
    use proptest::prelude::*;

    fn setup(kbps: f64) -> (MemsDevice, Workload) {
        (
            MemsDevice::table1(),
            Workload::paper_default(BitRate::from_kbps(kbps)),
        )
    }

    #[test]
    fn period_matches_equation_one() {
        let (d, w) = setup(1024.0);
        let b = DataSize::from_kibibytes(20.0);
        let c = RefillCycle::compute(&d, &w, b, BestEffortPolicy::AtReadWrite).unwrap();
        // Tm = B * rm / (rs * (rm - rs)).
        let expected = b.bits() * 102.4e6 / (1.024e6 * (102.4e6 - 1.024e6));
        assert!((c.period().seconds() - expected).abs() < 1e-12);
        // tRW = B / (rm - rs).
        let expected_rw = b.bits() / (102.4e6 - 1.024e6);
        assert!((c.read_write_time().seconds() - expected_rw).abs() < 1e-12);
    }

    #[test]
    fn decomposition_sums_to_period() {
        let (d, w) = setup(512.0);
        let c = RefillCycle::compute(
            &d,
            &w,
            DataSize::from_kibibytes(10.0),
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap();
        let total =
            c.read_write_time() + c.overhead_time() + c.best_effort_time() + c.standby_time();
        assert!((total.seconds() - c.period().seconds()).abs() < 1e-12);
    }

    #[test]
    fn best_effort_is_five_percent_of_period() {
        let (d, w) = setup(1024.0);
        let c = RefillCycle::compute(
            &d,
            &w,
            DataSize::from_kibibytes(20.0),
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap();
        assert!((c.best_effort_time().seconds() / c.period().seconds() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn excluded_policy_has_no_best_effort_time() {
        let (d, w) = setup(1024.0);
        let c = RefillCycle::compute(
            &d,
            &w,
            DataSize::from_kibibytes(20.0),
            BestEffortPolicy::Excluded,
        )
        .unwrap();
        assert_eq!(c.best_effort_time(), Duration::ZERO);
    }

    #[test]
    fn tiny_buffer_is_rejected_with_minimum() {
        let (d, w) = setup(1024.0);
        let err = RefillCycle::compute(
            &d,
            &w,
            DataSize::from_bits(10.0),
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap_err();
        match err {
            ModelError::BufferBelowCycleMinimum { minimum_bits, .. } => {
                assert!(minimum_bits > 10.0);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn min_buffer_is_exactly_workable() {
        let (d, w) = setup(1024.0);
        let min = RefillCycle::min_buffer(&d, &w, BestEffortPolicy::AtReadWrite).unwrap();
        let c = RefillCycle::compute(&d, &w, min, BestEffortPolicy::AtReadWrite).unwrap();
        assert!(c.standby_time().seconds() < 1e-9, "standby ~0 at the floor");
        assert!(RefillCycle::compute(&d, &w, min * 0.99, BestEffortPolicy::AtReadWrite).is_err());
    }

    #[test]
    fn overcommitted_rate_is_rejected() {
        let d = MemsDevice::table1();
        // 102.4 Mbps media rate; ask for 101 Mbps with a 5% reservation.
        let w = Workload::paper_default(BitRate::from_mbps(101.0));
        let err = RefillCycle::compute(
            &d,
            &w,
            DataSize::from_mebibytes(1.0),
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::RateExceedsBandwidth { .. }));
    }

    #[test]
    fn refills_per_year_matches_equation_five_term() {
        let (d, w) = setup(1024.0);
        let b = DataSize::from_kibibytes(92.0);
        let c = RefillCycle::compute(&d, &w, b, BestEffortPolicy::AtReadWrite).unwrap();
        let expected = 10_512_000.0 * 1_024_000.0 / b.bits();
        assert!((c.refills_per_year(&w) - expected).abs() < 1.0);
    }

    proptest! {
        #[test]
        fn standby_grows_with_buffer(kib in 3.0..1000.0f64) {
            let (d, w) = setup(1024.0);
            let small = RefillCycle::compute(&d, &w,
                DataSize::from_kibibytes(kib), BestEffortPolicy::AtReadWrite).unwrap();
            let big = RefillCycle::compute(&d, &w,
                DataSize::from_kibibytes(kib * 2.0), BestEffortPolicy::AtReadWrite).unwrap();
            prop_assert!(big.standby_time() > small.standby_time());
            // ...and the active *fraction* shrinks.
            prop_assert!(big.active_fraction() <= small.active_fraction());
        }

        #[test]
        fn decomposition_always_balances(kib in 3.0..500.0f64, kbps in 32.0..4096.0f64) {
            let (d, w) = setup(kbps);
            if let Ok(c) = RefillCycle::compute(&d, &w,
                DataSize::from_kibibytes(kib), BestEffortPolicy::AtReadWrite) {
                let total = c.read_write_time() + c.overhead_time()
                    + c.best_effort_time() + c.standby_time();
                prop_assert!((total.seconds() - c.period().seconds()).abs() < 1e-9);
            }
        }
    }
}
