//! The buffer-dimensioning question of §IV-C: goal in, buffer out.

use std::fmt;

use memstream_device::{EnergyModelled, WearModelled};
use memstream_units::DataSize;

use crate::capacity::CapacityModel;
use crate::cycle::RefillCycle;
use crate::energy::EnergyModel;
use crate::error::ModelError;
use crate::goal::{DesignGoal, Requirement};
use crate::lifetime::LifetimeModel;

/// The answer to "what buffer does this design goal need?": the minimal
/// buffer, the per-requirement minimums behind it, and which requirement
/// *dictates* (the region labels of Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferPlan {
    goal: DesignGoal,
    buffer: DataSize,
    dominant: Requirement,
    requirements: Vec<(Requirement, DataSize)>,
    cycle_floor: DataSize,
}

impl BufferPlan {
    /// The minimal buffer satisfying every requirement of the goal.
    #[must_use]
    pub fn buffer(&self) -> DataSize {
        self.buffer
    }

    /// The requirement that dictated the buffer (the largest minimum).
    #[must_use]
    pub fn dominant(&self) -> Requirement {
        self.dominant
    }

    /// The goal this plan answers.
    #[must_use]
    pub fn goal(&self) -> &DesignGoal {
        &self.goal
    }

    /// The per-requirement minimal buffers that were combined.
    #[must_use]
    pub fn requirements(&self) -> &[(Requirement, DataSize)] {
        &self.requirements
    }

    /// The minimal buffer a single requirement demands, if it was part of
    /// the goal.
    #[must_use]
    pub fn requirement_buffer(&self, requirement: Requirement) -> Option<DataSize> {
        self.requirements
            .iter()
            .find(|(r, _)| *r == requirement)
            .map(|(_, b)| *b)
    }

    /// The structural floor below which no refill cycle completes at all
    /// (seek + shutdown + best-effort must fit in the period). The planned
    /// buffer is never below this.
    #[must_use]
    pub fn cycle_floor(&self) -> DataSize {
        self.cycle_floor
    }
}

impl fmt::Display for BufferPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "goal {} needs {} (dictated by {})",
            self.goal, self.buffer, self.dominant
        )
    }
}

/// Combines the three models and answers design questions — the paper's
/// "inverse functions ... to map from design requirements to a design
/// decision: buffer size".
///
/// ```
/// use memstream_core::{DesignGoal, SystemModel};
/// use memstream_units::BitRate;
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let model = SystemModel::paper_default(BitRate::from_kbps(256.0));
/// let plan = model.dimension(&DesignGoal::fig3b())?;
/// // At low rates capacity dictates (the "C" region of Fig. 3b).
/// assert_eq!(plan.dominant(), memstream_core::Requirement::Capacity);
/// # Ok(())
/// # }
/// ```
/// Both device type parameters default to trait objects, so existing
/// `BufferDimensioner<'a>` signatures keep compiling; pairing concrete
/// energy/wear device types monomorphizes the whole dimensioning path.
#[derive(Debug)]
pub struct BufferDimensioner<
    'a,
    E: EnergyModelled + ?Sized = dyn EnergyModelled + 'a,
    W: WearModelled + ?Sized = dyn WearModelled + 'a,
> {
    energy: EnergyModel<'a, E>,
    capacity: CapacityModel,
    lifetime: LifetimeModel<'a, W>,
}

impl<E: EnergyModelled + ?Sized, W: WearModelled + ?Sized> Clone for BufferDimensioner<'_, E, W> {
    fn clone(&self) -> Self {
        BufferDimensioner {
            energy: self.energy.clone(),
            capacity: self.capacity,
            lifetime: self.lifetime.clone(),
        }
    }
}

impl<'a, E: EnergyModelled + ?Sized, W: WearModelled + ?Sized> BufferDimensioner<'a, E, W> {
    /// Creates a dimensioner from the three component models.
    pub fn new(
        energy: EnergyModel<'a, E>,
        capacity: CapacityModel,
        lifetime: LifetimeModel<'a, W>,
    ) -> Self {
        BufferDimensioner {
            energy,
            capacity,
            lifetime,
        }
    }

    /// The energy component.
    #[must_use]
    pub fn energy(&self) -> &EnergyModel<'a, E> {
        &self.energy
    }

    /// The capacity component.
    #[must_use]
    pub fn capacity(&self) -> &CapacityModel {
        &self.capacity
    }

    /// The lifetime component.
    #[must_use]
    pub fn lifetime(&self) -> &LifetimeModel<'a, W> {
        &self.lifetime
    }

    /// Answers the design question for `goal`: the minimal buffer and the
    /// dictating requirement, or a statement of infeasibility.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyGoal`] if the goal constrains nothing.
    /// * [`ModelError::InfeasibleGoal`] if any requirement is unreachable
    ///   at this stream rate (the error names the requirement).
    /// * [`ModelError::RateExceedsBandwidth`] if the stream rate itself is
    ///   unsustainable.
    pub fn dimension(&self, goal: &DesignGoal) -> Result<BufferPlan, ModelError> {
        if goal.is_empty() {
            return Err(ModelError::EmptyGoal);
        }

        let mut requirements: Vec<(Requirement, DataSize)> = Vec::new();

        if let Some(c) = goal.capacity_target() {
            requirements.push((
                Requirement::Capacity,
                self.capacity.min_buffer_for_utilization(c)?,
            ));
        }
        if let Some(e) = goal.energy_saving_target() {
            requirements.push((Requirement::Energy, self.energy.min_buffer_for_saving(e)?));
        }
        if let Some(l) = goal.lifetime_target() {
            // One entry per wear channel that binds: springs then probes
            // for the MEMS pair, a single erase budget for flash.
            for channel in self.lifetime.channels().to_vec() {
                if let Some(b) = self.lifetime.min_buffer_for_channel(&channel, l)? {
                    requirements.push((LifetimeModel::channel_requirement(&channel), b));
                }
            }
        }

        let (dominant, largest) = match requirements
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite buffers"))
            .copied()
        {
            Some(winner) => winner,
            // The goal constrains only wear channels that never bind under
            // this workload (e.g. a lifetime goal over a read-only stream
            // on a write-wear device): any cycle-capable buffer satisfies
            // it, and no requirement meaningfully dictates. Label with the
            // device's own first wear channel so reports never claim a
            // mechanism the device does not have (a springless flash part
            // must not read "Lsp").
            None => {
                let requirement = self
                    .lifetime
                    .channels()
                    .first()
                    .map_or(Requirement::SpringsLifetime, |c| {
                        LifetimeModel::channel_requirement(c)
                    });
                (requirement, DataSize::ZERO)
            }
        };

        let cycle_floor = RefillCycle::min_buffer(
            self.energy.device(),
            self.energy.workload(),
            self.energy.policy(),
        )?;
        let mut buffer = largest.max(cycle_floor);

        // Utilisation is a sawtooth of the buffer size: a buffer enlarged
        // by the springs or energy requirement can dip back below a
        // utilisation target (capacity goal or probes-implied). Bump to the
        // next sawtooth-valid size.
        let mut required_u = goal.capacity_target();
        if let Some(l) = goal.lifetime_target() {
            if let Some(u) = self.lifetime.required_utilization_for_probes(l)? {
                required_u = Some(required_u.map_or(u, |c| c.max(u)));
            }
        }
        if let Some(u) = required_u {
            buffer = self
                .capacity
                .min_buffer_for_utilization_at_least(u, buffer)?;
        }

        Ok(BufferPlan {
            goal: *goal,
            buffer,
            dominant,
            requirements,
            cycle_floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::BestEffortPolicy;
    use memstream_device::MemsDevice;
    use memstream_units::{BitRate, Ratio, Years};
    use memstream_workload::Workload;

    fn dimensioner(device: &MemsDevice, kbps: f64) -> BufferDimensioner<'_> {
        let workload = Workload::paper_default(BitRate::from_kbps(kbps));
        BufferDimensioner::new(
            EnergyModel::new(device, workload, BestEffortPolicy::AtReadWrite, None),
            CapacityModel::paper_default(),
            LifetimeModel::new(device, workload, CapacityModel::paper_default()),
        )
    }

    #[test]
    fn empty_goal_is_an_error() {
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        assert_eq!(
            dim.dimension(&DesignGoal::new()).unwrap_err(),
            ModelError::EmptyGoal
        );
    }

    #[test]
    fn plan_meets_every_requirement() {
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        let goal = DesignGoal::fig3b();
        let plan = dim.dimension(&goal).unwrap();
        let b = plan.buffer();
        assert!(dim.capacity().utilization(b) >= Ratio::from_percent(88.0));
        assert!(dim.energy().saving(b).unwrap() >= 0.70);
        assert!(dim.lifetime().device_lifetime(b).get() >= 7.0 - 1e-9);
    }

    #[test]
    fn dominant_is_the_largest_requirement() {
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        let plan = dim.dimension(&DesignGoal::fig3b()).unwrap();
        for (_, b) in plan.requirements() {
            assert!(*b <= plan.buffer());
        }
        assert_eq!(
            plan.requirement_buffer(plan.dominant()).unwrap().bits(),
            plan.requirements()
                .iter()
                .map(|(_, b)| b.bits())
                .fold(0.0, f64::max)
        );
    }

    #[test]
    fn fig3a_goal_infeasible_at_high_rate() {
        // (E = 80%, ...) fails above ~1.3 Mbps: the "X" region of Fig. 3a.
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 2048.0);
        let err = dim.dimension(&DesignGoal::fig3a()).unwrap_err();
        match err {
            ModelError::InfeasibleGoal { requirement, .. } => {
                assert_eq!(requirement, Requirement::Energy);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fig3b_goal_feasible_where_fig3a_is_not() {
        // Dropping E from 80% to 70% extends the feasible range — the
        // paper's "trading off 10% of the optimal energy saving".
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 2048.0);
        assert!(dim.dimension(&DesignGoal::fig3b()).is_ok());
    }

    #[test]
    fn springs_dominate_mid_range_under_fig3b() {
        // Fig. 3b: capacity, then springs lifetime dominate. At 1024 kbps
        // with Dsp = 1e8 the springs demand ~92 KiB > capacity's ~30 KiB.
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        let plan = dim.dimension(&DesignGoal::fig3b()).unwrap();
        assert_eq!(plan.dominant(), Requirement::SpringsLifetime);
    }

    #[test]
    fn capacity_dominates_at_low_rate() {
        // Fig. 3a/3b: "the capacity dominates for up to 300 kbps".
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 64.0);
        let plan = dim.dimension(&DesignGoal::fig3b()).unwrap();
        assert_eq!(plan.dominant(), Requirement::Capacity);
    }

    #[test]
    fn lifetime_only_goal_has_no_capacity_entry() {
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        let plan = dim
            .dimension(&DesignGoal::new().lifetime(Years::new(4.0)))
            .unwrap();
        assert!(plan.requirement_buffer(Requirement::Capacity).is_none());
        assert!(plan
            .requirement_buffer(Requirement::SpringsLifetime)
            .is_some());
    }

    #[test]
    fn cycle_floor_is_enforced() {
        // A trivially small capacity goal would permit a sub-cycle buffer;
        // the plan clamps to the structural floor.
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        let plan = dim
            .dimension(&DesignGoal::new().capacity_utilization(Ratio::from_percent(1.0)))
            .unwrap();
        assert!(plan.buffer() >= plan.cycle_floor());
    }

    #[test]
    fn plan_display_names_goal_and_dominant() {
        let d = MemsDevice::table1();
        let dim = dimensioner(&d, 1024.0);
        let plan = dim.dimension(&DesignGoal::fig3b()).unwrap();
        let text = plan.to_string();
        assert!(text.contains("dictated by"));
        assert!(text.contains("70.0%"));
    }
}
