//! The [`SystemModel`] facade: one owned object wiring device, workload,
//! format, DRAM and policy together.

use std::fmt;

use memstream_device::{DramModel, MemsDevice};
use memstream_media::SectorFormat;
use memstream_units::{BitRate, DataSize, EnergyPerBit, Ratio, Years};
use memstream_workload::Workload;

use crate::capacity::CapacityModel;
use crate::cycle::BestEffortPolicy;
use crate::dimension::{BufferDimensioner, BufferPlan};
use crate::energy::EnergyModel;
use crate::error::ModelError;
use crate::goal::DesignGoal;
use crate::lifetime::LifetimeModel;

/// The full modelled system of Fig. 1a: a MEMS device, its DRAM buffer, a
/// sector format and a streaming workload.
///
/// This is the intended entry point of the crate; the component models
/// ([`EnergyModel`], [`CapacityModel`], [`LifetimeModel`]) are borrowed
/// views into it.
///
/// ```
/// use memstream_core::SystemModel;
/// use memstream_units::{BitRate, DataSize};
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
/// let b = DataSize::from_kibibytes(20.0);
/// println!(
///     "Em({b}) = {}, u = {}, L = {}",
///     model.per_bit_energy(b)?,
///     model.utilization(b),
///     model.device_lifetime(b),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemModel {
    device: MemsDevice,
    workload: Workload,
    format: SectorFormat,
    dram: Option<DramModel>,
    policy: BestEffortPolicy,
}

impl SystemModel {
    /// The paper's system: Table I device, §IV-A workload at `rate`, the
    /// default sector format, a Micron-style DRAM buffer and best-effort
    /// charged at read/write power.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn paper_default(rate: BitRate) -> Self {
        let device = MemsDevice::table1();
        let format = SectorFormat::for_device(&device);
        SystemModel {
            device,
            workload: Workload::paper_default(rate),
            format,
            dram: Some(DramModel::micron_ddr_mobile()),
            policy: BestEffortPolicy::AtReadWrite,
        }
    }

    /// Creates a system model from explicit parts.
    #[must_use]
    pub fn new(
        device: MemsDevice,
        workload: Workload,
        format: SectorFormat,
        dram: Option<DramModel>,
        policy: BestEffortPolicy,
    ) -> Self {
        SystemModel {
            device,
            workload,
            format,
            dram,
            policy,
        }
    }

    /// Returns a copy at a different stream rate (the sweep variable of
    /// every figure).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn with_rate(&self, rate: BitRate) -> Self {
        let mut copy = self.clone();
        copy.workload = self.workload.with_rate(rate);
        copy
    }

    /// Returns a copy with a different device (e.g. different wear
    /// ratings for Fig. 3c).
    #[must_use]
    pub fn with_device(&self, device: MemsDevice) -> Self {
        let mut copy = self.clone();
        copy.format = SectorFormat::for_device(&device);
        copy.device = device;
        copy
    }

    /// Returns a copy with a different best-effort accounting policy.
    #[must_use]
    pub fn with_policy(&self, policy: BestEffortPolicy) -> Self {
        let mut copy = self.clone();
        copy.policy = policy;
        copy
    }

    /// Returns a copy with the DRAM term removed (device-only energy).
    #[must_use]
    pub fn without_dram(&self) -> Self {
        let mut copy = self.clone();
        copy.dram = None;
        copy
    }

    /// The modelled device.
    #[must_use]
    pub fn device(&self) -> &MemsDevice {
        &self.device
    }

    /// The workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The sector format.
    #[must_use]
    pub fn format(&self) -> &SectorFormat {
        &self.format
    }

    /// The DRAM buffer model, if attached.
    #[must_use]
    pub fn dram(&self) -> Option<&DramModel> {
        self.dram.as_ref()
    }

    /// The best-effort accounting policy.
    #[must_use]
    pub fn policy(&self) -> BestEffortPolicy {
        self.policy
    }

    /// The energy component model (§III-A).
    #[must_use]
    pub fn energy_model(&self) -> EnergyModel<'_> {
        EnergyModel::new(&self.device, self.workload, self.policy, self.dram.as_ref())
    }

    /// The capacity component model (§III-B).
    #[must_use]
    pub fn capacity_model(&self) -> CapacityModel {
        CapacityModel::new(self.format, self.device.capacity())
    }

    /// The lifetime component model (§III-C).
    #[must_use]
    pub fn lifetime_model(&self) -> LifetimeModel<'_> {
        LifetimeModel::new(&self.device, self.workload, self.capacity_model())
    }

    /// The combined dimensioner (§IV-C).
    #[must_use]
    pub fn dimensioner(&self) -> BufferDimensioner<'_> {
        BufferDimensioner::new(
            self.energy_model(),
            self.capacity_model(),
            self.lifetime_model(),
        )
    }

    /// Answers the §IV-C design question at this system's stream rate.
    ///
    /// # Errors
    ///
    /// See [`BufferDimensioner::dimension`].
    pub fn dimension(&self, goal: &DesignGoal) -> Result<BufferPlan, ModelError> {
        self.dimensioner().dimension(goal)
    }

    /// `Em(B)` — per-bit energy at buffer `buffer` (Eq. (1) + DRAM).
    ///
    /// # Errors
    ///
    /// See [`EnergyModel::per_bit_energy`].
    pub fn per_bit_energy(&self, buffer: DataSize) -> Result<EnergyPerBit, ModelError> {
        self.energy_model().per_bit_energy(buffer)
    }

    /// Energy saving versus always-on at buffer `buffer`.
    ///
    /// # Errors
    ///
    /// See [`EnergyModel::saving`].
    pub fn saving(&self, buffer: DataSize) -> Result<f64, ModelError> {
        self.energy_model().saving(buffer)
    }

    /// The break-even buffer of §III-A.1.
    ///
    /// # Errors
    ///
    /// See [`EnergyModel::break_even_buffer`].
    pub fn break_even_buffer(&self) -> Result<DataSize, ModelError> {
        self.energy_model().break_even_buffer()
    }

    /// Capacity utilisation `u(B)` with `Su = B`.
    #[must_use]
    pub fn utilization(&self, buffer: DataSize) -> Ratio {
        self.capacity_model().utilization(buffer)
    }

    /// Springs lifetime `Lsp(B)` (Eq. (5)).
    #[must_use]
    pub fn springs_lifetime(&self, buffer: DataSize) -> Years {
        self.lifetime_model().springs_lifetime(buffer)
    }

    /// Probes lifetime `Lpb(B)` (Eq. (6)).
    #[must_use]
    pub fn probes_lifetime(&self, buffer: DataSize) -> Years {
        self.lifetime_model().probes_lifetime(buffer)
    }

    /// Device lifetime `min(Lsp, Lpb)`.
    #[must_use]
    pub fn device_lifetime(&self, buffer: DataSize) -> Years {
        self.lifetime_model().device_lifetime(buffer)
    }
}

impl crate::device_model::AnalyticModel for SystemModel {
    fn with_rate(&self, rate: BitRate) -> Self {
        SystemModel::with_rate(self, rate)
    }

    fn energy_model(&self) -> EnergyModel<'_> {
        SystemModel::energy_model(self)
    }

    fn capacity_model(&self) -> CapacityModel {
        SystemModel::capacity_model(self)
    }

    fn lifetime_model(&self) -> LifetimeModel<'_> {
        SystemModel::lifetime_model(self)
    }

    fn dimension(&self, goal: &DesignGoal) -> Result<BufferPlan, ModelError> {
        SystemModel::dimension(self, goal)
    }

    fn break_even_buffer(&self) -> Result<DataSize, ModelError> {
        SystemModel::break_even_buffer(self)
    }
}

impl fmt::Display for SystemModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} under {} ({})",
            self.device, self.workload, self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_agrees_with_component_models() {
        let m = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let b = DataSize::from_kibibytes(20.0);
        assert_eq!(
            m.per_bit_energy(b).unwrap(),
            m.energy_model().per_bit_energy(b).unwrap()
        );
        assert_eq!(m.utilization(b), m.capacity_model().utilization(b));
        assert_eq!(
            m.springs_lifetime(b),
            m.lifetime_model().springs_lifetime(b)
        );
    }

    #[test]
    fn with_rate_changes_only_the_workload() {
        let m = SystemModel::paper_default(BitRate::from_kbps(32.0));
        let m2 = m.with_rate(BitRate::from_kbps(4096.0));
        assert_eq!(m2.workload().rate(), BitRate::from_kbps(4096.0));
        assert_eq!(m2.device(), m.device());
        assert_eq!(m2.policy(), m.policy());
    }

    #[test]
    fn without_dram_lowers_per_bit_energy() {
        let m = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let b = DataSize::from_kibibytes(20.0);
        let with = m.per_bit_energy(b).unwrap();
        let without = m.without_dram().per_bit_energy(b).unwrap();
        assert!(without < with);
    }

    #[test]
    fn with_device_rebuilds_format() {
        let m = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let hi = m.with_device(
            MemsDevice::table1()
                .with_probe_write_cycles(200.0)
                .with_spring_duty_cycles(1e12),
        );
        assert_eq!(hi.device().probe_write_cycles(), 200.0);
        assert_eq!(hi.format().stripe_width(), 1024);
    }
}
