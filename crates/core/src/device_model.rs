//! The open-world counterpart of [`SystemModel`](crate::SystemModel):
//! a full analytic model assembled from capability traits.
//!
//! [`crate::SystemModel`] is the paper's facade — it owns a concrete
//! [`memstream_device::MemsDevice`]. [`CapabilityModel`] assembles the
//! same component models ([`EnergyModel`], [`CapacityModel`],
//! [`LifetimeModel`], [`BufferDimensioner`]) from *any*
//! [`StorageDevice`] that exposes the energy, wear and utilisation
//! capabilities — the path the scenario grid dispatches every registered
//! device through. For a MEMS device the two paths produce bit-identical
//! numbers; for a flash device this is the only path.

use memstream_device::{DramModel, EnergyModelled, StorageDevice, UtilizationSpec, WearModelled};
use memstream_media::SectorFormat;
use memstream_units::{BitRate, DataSize, EnergyPerBit, Ratio, Years};
use memstream_workload::Workload;

use crate::capacity::CapacityModel;
use crate::cycle::BestEffortPolicy;
use crate::dimension::{BufferDimensioner, BufferPlan};
use crate::energy::EnergyModel;
use crate::error::ModelError;
use crate::goal::DesignGoal;
use crate::lifetime::LifetimeModel;

/// The interface sweeps and explorations are generic over: anything that
/// can hand out the three component models and answer the dimensioning
/// question at any stream rate.
///
/// Implemented by the concrete [`crate::SystemModel`] (the paper's MEMS
/// facade) and by [`CapabilityModel`] (any capability-complete device).
pub trait AnalyticModel: Sized {
    /// A copy of the model at a different stream rate (the sweep variable
    /// of every figure).
    fn with_rate(&self, rate: BitRate) -> Self;

    /// The energy component model (§III-A).
    fn energy_model(&self) -> EnergyModel<'_>;

    /// The capacity component model (§III-B).
    fn capacity_model(&self) -> CapacityModel;

    /// The lifetime component model (§III-C).
    fn lifetime_model(&self) -> LifetimeModel<'_>;

    /// Answers the §IV-C design question at this model's stream rate.
    ///
    /// # Errors
    ///
    /// See [`BufferDimensioner::dimension`].
    fn dimension(&self, goal: &DesignGoal) -> Result<BufferPlan, ModelError>;

    /// The break-even buffer of §III-A.1.
    ///
    /// # Errors
    ///
    /// See [`EnergyModel::break_even_buffer`].
    fn break_even_buffer(&self) -> Result<DataSize, ModelError> {
        self.energy_model().break_even_buffer()
    }
}

/// A fully capable device model assembled from the capability seam.
///
/// ```
/// use memstream_core::{AnalyticModel, BestEffortPolicy, CapabilityModel, DesignGoal};
/// use memstream_device::FlashDevice;
/// use memstream_units::BitRate;
/// use memstream_workload::Workload;
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let flash = FlashDevice::mobile_mlc();
/// let model = CapabilityModel::new(
///     &flash,
///     Workload::paper_default(BitRate::from_kbps(1024.0)),
///     None,
///     BestEffortPolicy::AtReadWrite,
/// )?;
/// let plan = model.dimension(&DesignGoal::fig3b())?;
/// assert!(plan.buffer().kibibytes() > 0.0);
/// # Ok(())
/// # }
/// ```
/// Both device type parameters default to trait objects, so the historical
/// `CapabilityModel<'a>` spelling keeps meaning "any registered device
/// behind `&dyn`". Instantiating with a concrete device type (via
/// [`CapabilityModel::from_device`]) monomorphizes every component model —
/// the grid's series fast path for the registered mems/disk/flash devices,
/// which produces bit-identical numbers because the math is unchanged.
#[derive(Debug)]
pub struct CapabilityModel<
    'a,
    E: EnergyModelled + ?Sized = dyn EnergyModelled + 'a,
    W: WearModelled + ?Sized = dyn WearModelled + 'a,
> {
    capacity: DataSize,
    energy: &'a E,
    wear: &'a W,
    utilization: UtilizationSpec,
    workload: Workload,
    dram: Option<DramModel>,
    policy: BestEffortPolicy,
}

impl<E: EnergyModelled + ?Sized, W: WearModelled + ?Sized> Clone for CapabilityModel<'_, E, W> {
    fn clone(&self) -> Self {
        CapabilityModel {
            capacity: self.capacity,
            energy: self.energy,
            wear: self.wear,
            utilization: self.utilization,
            workload: self.workload,
            dram: self.dram.clone(),
            policy: self.policy,
        }
    }
}

/// The utilisation sanity check shared by every constructor, so the dyn
/// and monomorphized paths reject malformed specs with identical errors.
fn validate_utilization(utilization: UtilizationSpec) -> Result<(), ModelError> {
    match utilization {
        UtilizationSpec::Constant { fraction } if !(fraction > 0.0 && fraction <= 1.0) => {
            Err(ModelError::InvalidCapability {
                capability: "utilization",
                reason: format!("constant fraction {fraction} is outside (0, 1]"),
            })
        }
        UtilizationSpec::SectorFormat { stripe_width: 0 } => Err(ModelError::InvalidCapability {
            capability: "utilization",
            reason: "sector-format stripe width is zero".to_owned(),
        }),
        _ => Ok(()),
    }
}

impl<'a> CapabilityModel<'a> {
    /// Assembles the model, checking that the device exposes every
    /// capability the full pipeline needs.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingCapability`] naming the first missing
    /// capability (`"energy"`, `"wear"` or `"utilization"`), or
    /// [`ModelError::InvalidCapability`] when a registered device reports
    /// an out-of-range utilisation payload — registry devices are
    /// third-party code, so malformed specs surface here as errors rather
    /// than panicking a grid worker mid-exploration.
    pub fn new(
        device: &'a dyn StorageDevice,
        workload: Workload,
        dram: Option<DramModel>,
        policy: BestEffortPolicy,
    ) -> Result<Self, ModelError> {
        let energy = device.energy().ok_or(ModelError::MissingCapability {
            capability: "energy",
        })?;
        let wear = device
            .wear()
            .ok_or(ModelError::MissingCapability { capability: "wear" })?;
        let utilization = device.utilization().ok_or(ModelError::MissingCapability {
            capability: "utilization",
        })?;
        validate_utilization(utilization)?;
        Ok(CapabilityModel {
            capacity: device.capacity(),
            energy,
            wear,
            utilization,
            workload,
            dram,
            policy,
        })
    }
}

impl<'a, D> CapabilityModel<'a, D, D>
where
    D: StorageDevice + EnergyModelled + WearModelled,
{
    /// Monomorphized assembly for a device type that models its own energy
    /// and wear (the registered mems/disk/flash devices all do): every
    /// capability dispatch is resolved at compile time.
    ///
    /// The capability presence checks go through the same [`StorageDevice`]
    /// accessors as [`CapabilityModel::new`], so a device that masks a
    /// capability (reports `None`) is rejected with the identical error
    /// even though the trait bound could satisfy it.
    ///
    /// # Errors
    ///
    /// As for [`CapabilityModel::new`].
    pub fn from_device(
        device: &'a D,
        workload: Workload,
        dram: Option<DramModel>,
        policy: BestEffortPolicy,
    ) -> Result<Self, ModelError> {
        if device.energy().is_none() {
            return Err(ModelError::MissingCapability {
                capability: "energy",
            });
        }
        if device.wear().is_none() {
            return Err(ModelError::MissingCapability { capability: "wear" });
        }
        let utilization = device.utilization().ok_or(ModelError::MissingCapability {
            capability: "utilization",
        })?;
        validate_utilization(utilization)?;
        Ok(CapabilityModel {
            capacity: device.capacity(),
            energy: device,
            wear: device,
            utilization,
            workload,
            dram,
            policy,
        })
    }
}

impl<'a, E: EnergyModelled + ?Sized, W: WearModelled + ?Sized> CapabilityModel<'a, E, W> {
    /// The modelled device's media capacity.
    #[must_use]
    pub fn capacity(&self) -> DataSize {
        self.capacity
    }

    /// The workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The best-effort accounting policy.
    #[must_use]
    pub fn policy(&self) -> BestEffortPolicy {
        self.policy
    }

    /// A copy of the model at a different stream rate (also available via
    /// [`AnalyticModel::with_rate`] on the `dyn` instantiation).
    #[must_use]
    pub fn with_rate(&self, rate: BitRate) -> Self {
        let mut copy = self.clone();
        copy.workload = self.workload.with_rate(rate);
        copy
    }

    /// The energy component model (§III-A).
    #[must_use]
    pub fn energy_model(&self) -> EnergyModel<'_, E> {
        EnergyModel::new(self.energy, self.workload, self.policy, self.dram.as_ref())
    }

    /// The capacity component model (§III-B).
    #[must_use]
    pub fn capacity_model(&self) -> CapacityModel {
        match self.utilization {
            UtilizationSpec::SectorFormat { stripe_width } => {
                CapacityModel::new(SectorFormat::for_stripe_width(stripe_width), self.capacity)
            }
            UtilizationSpec::Constant { fraction } => {
                CapacityModel::constant(Ratio::from_fraction(fraction), self.capacity)
            }
        }
    }

    /// The lifetime component model (§III-C).
    #[must_use]
    pub fn lifetime_model(&self) -> LifetimeModel<'_, W> {
        LifetimeModel::new(self.wear, self.workload, self.capacity_model())
    }

    /// The combined dimensioner (§IV-C).
    #[must_use]
    pub fn dimensioner(&self) -> BufferDimensioner<'_, E, W> {
        BufferDimensioner::new(
            self.energy_model(),
            self.capacity_model(),
            self.lifetime_model(),
        )
    }

    /// Answers the §IV-C design question at this model's stream rate.
    ///
    /// # Errors
    ///
    /// See [`BufferDimensioner::dimension`].
    pub fn dimension(&self, goal: &DesignGoal) -> Result<BufferPlan, ModelError> {
        self.dimensioner().dimension(goal)
    }

    /// Energy saving versus always-on at buffer `buffer`.
    ///
    /// # Errors
    ///
    /// See [`EnergyModel::saving`].
    pub fn saving(&self, buffer: DataSize) -> Result<f64, ModelError> {
        self.energy_model().saving(buffer)
    }

    /// Capacity utilisation `u(B)`.
    #[must_use]
    pub fn utilization(&self, buffer: DataSize) -> Ratio {
        self.capacity_model().utilization(buffer)
    }

    /// Device lifetime: the minimum over every wear channel.
    #[must_use]
    pub fn device_lifetime(&self, buffer: DataSize) -> Years {
        self.lifetime_model().device_lifetime(buffer)
    }

    /// `Em(B)` — per-bit energy at buffer `buffer`.
    ///
    /// # Errors
    ///
    /// See [`EnergyModel::per_bit_energy`].
    pub fn per_bit_energy(&self, buffer: DataSize) -> Result<EnergyPerBit, ModelError> {
        self.energy_model().per_bit_energy(buffer)
    }
}

impl AnalyticModel for CapabilityModel<'_> {
    fn with_rate(&self, rate: BitRate) -> Self {
        // Inherent methods win resolution, so these delegate rather than
        // recurse.
        self.with_rate(rate)
    }

    fn energy_model(&self) -> EnergyModel<'_> {
        self.energy_model()
    }

    fn capacity_model(&self) -> CapacityModel {
        self.capacity_model()
    }

    fn lifetime_model(&self) -> LifetimeModel<'_> {
        self.lifetime_model()
    }

    fn dimension(&self, goal: &DesignGoal) -> Result<BufferPlan, ModelError> {
        self.dimensioner().dimension(goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemModel;
    use memstream_device::{DiskDevice, FlashDevice, MemsDevice};
    use memstream_units::BitRate;

    fn workload(kbps: f64) -> Workload {
        Workload::paper_default(BitRate::from_kbps(kbps))
    }

    #[test]
    fn capability_path_is_bit_identical_to_system_model_for_mems() {
        // The acceptance bar of the registry refactor: for the paper's
        // device, the open capability path and the concrete facade must
        // agree to the last bit — plans, metrics and error strings.
        let device = MemsDevice::table1();
        for kbps in [64.0, 300.0, 1024.0, 2048.0, 4096.0] {
            let facade = SystemModel::paper_default(BitRate::from_kbps(kbps));
            let open = CapabilityModel::new(
                &device,
                workload(kbps),
                Some(DramModel::micron_ddr_mobile()),
                BestEffortPolicy::AtReadWrite,
            )
            .unwrap();
            for goal in [DesignGoal::fig3a(), DesignGoal::fig3b()] {
                match (facade.dimension(&goal), open.dimension(&goal)) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.buffer().bits(), b.buffer().bits());
                        assert_eq!(a.dominant(), b.dominant());
                        let buf = a.buffer();
                        assert_eq!(facade.saving(buf).ok(), open.saving(buf).ok());
                        assert_eq!(facade.utilization(buf), open.utilization(buf));
                        assert_eq!(
                            facade.device_lifetime(buf).get(),
                            open.device_lifetime(buf).get()
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => panic!("paths diverge at {kbps} kbps: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn missing_capabilities_are_named() {
        // The full disk now carries wear + utilisation; masking it back to
        // its paper-era energy-only role exercises the missing-capability
        // path the grid's energy-only fallback dispatches on.
        use memstream_device::EnergyOnly;
        let masked = EnergyOnly::new(DiskDevice::calibrated_1p8_inch());
        let err = CapabilityModel::new(
            &masked,
            workload(1024.0),
            None,
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap_err();
        assert_eq!(err, ModelError::MissingCapability { capability: "wear" });

        // The unmasked disk assembles the full pipeline.
        let disk = DiskDevice::calibrated_1p8_inch();
        assert!(
            CapabilityModel::new(&disk, workload(1024.0), None, BestEffortPolicy::AtReadWrite)
                .is_ok()
        );
    }

    #[test]
    fn malformed_utilization_specs_error_instead_of_panicking() {
        // A third-party registry device with an out-of-range constant
        // utilisation must be rejected at assembly, not panic a grid
        // worker when the capacity model is built.
        #[derive(Debug)]
        struct BadFlash(FlashDevice);
        impl StorageDevice for BadFlash {
            fn kind(&self) -> &'static str {
                "bad-flash"
            }
            fn dedup_token(&self) -> String {
                "bad-flash".to_owned()
            }
            fn capacity(&self) -> memstream_units::DataSize {
                self.0.capacity()
            }
            fn energy(&self) -> Option<&dyn EnergyModelled> {
                Some(&self.0)
            }
            fn wear(&self) -> Option<&dyn WearModelled> {
                Some(&self.0)
            }
            fn utilization(&self) -> Option<UtilizationSpec> {
                Some(UtilizationSpec::Constant { fraction: 0.0 })
            }
            fn clone_box(&self) -> Box<dyn StorageDevice> {
                Box::new(BadFlash(self.0.clone()))
            }
        }
        let bad = BadFlash(FlashDevice::mobile_mlc());
        let err = CapabilityModel::new(&bad, workload(1024.0), None, BestEffortPolicy::AtReadWrite)
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidCapability {
                capability: "utilization",
                ..
            }
        ));
        assert!(err.to_string().contains("outside (0, 1]"));
    }

    #[test]
    fn flash_plans_are_erase_or_energy_dominated() {
        let flash = FlashDevice::mobile_mlc();
        let model = CapabilityModel::new(
            &flash,
            workload(1024.0),
            Some(DramModel::micron_ddr_mobile()),
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap();
        let plan = model.dimension(&DesignGoal::fig3b()).unwrap();
        // Capacity is constant for flash, so only energy or erase wear can
        // dictate; at the paper's default workload the erase budget does.
        assert_eq!(plan.dominant().label(), "Lpe");
        assert!(model.device_lifetime(plan.buffer()).get() >= 7.0 - 1e-9);
        assert!(model.saving(plan.buffer()).unwrap() >= 0.70);
    }

    #[test]
    fn sweep_builder_accepts_the_capability_model() {
        use crate::explore::{log_spaced_rates, SweepBuilder};
        let flash = FlashDevice::mobile_mlc();
        let model = CapabilityModel::new(
            &flash,
            workload(1024.0),
            None,
            BestEffortPolicy::AtReadWrite,
        )
        .unwrap();
        let sweep = SweepBuilder::new(&model);
        let points = sweep.rate_sweep(&DesignGoal::fig3b(), log_spaced_rates(32.0, 4096.0, 10));
        assert_eq!(points.len(), 10);
        assert!(points.iter().any(|p| p.plan.is_ok()));
    }
}
