//! The per-bit energy model: Eq. (1), the break-even buffer of §III-A.1,
//! and the inverse function "saving goal → minimum buffer".

use std::fmt;

use memstream_device::{DramModel, EnergyModelled, PowerState};
use memstream_units::{DataSize, Energy, EnergyPerBit, Ratio};
use memstream_workload::Workload;

use crate::cycle::{
    effective_best_effort, per_bit_period, per_bit_read_write, BestEffortPolicy, RefillCycle,
};
use crate::error::ModelError;
use crate::goal::Requirement;

const BITS_PER_MIB: f64 = 8.0 * 1024.0 * 1024.0;

/// Energy account of one refill cycle, split by activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleEnergy {
    /// Seek + shutdown overhead energy `Eoh`.
    pub overhead: Energy,
    /// Refill transfer energy (`tRW · P_RW`).
    pub read_write: Energy,
    /// Best-effort service energy.
    pub best_effort: Energy,
    /// Standby energy over the sleep remainder.
    pub standby: Energy,
    /// DRAM buffer energy (retention + access), if a DRAM model is attached.
    pub dram: Energy,
    /// The buffer the cycle delivered.
    pub buffer: DataSize,
}

impl CycleEnergy {
    /// Total energy of the cycle.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.overhead + self.read_write + self.best_effort + self.standby + self.dram
    }

    /// The paper's `Em(B)`: total cycle energy per streamed bit.
    #[must_use]
    pub fn per_bit(&self) -> EnergyPerBit {
        self.total() / self.buffer
    }

    /// The MEMS-only share (excluding DRAM), for negligibility checks.
    #[must_use]
    pub fn device_only(&self) -> Energy {
        self.overhead + self.read_write + self.best_effort + self.standby
    }
}

impl fmt::Display for CycleEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle energy: overhead {}, rw {}, best-effort {}, standby {}, dram {} => {} ({})",
            self.overhead,
            self.read_write,
            self.best_effort,
            self.standby,
            self.dram,
            self.total(),
            self.per_bit()
        )
    }
}

/// The energy model of §III-A for any [`EnergyModelled`] device.
///
/// The paper's per-bit energy (Eq. (1)) decomposes, per buffered bit, into
/// an overhead term that shrinks as `1/B` and constant transfer/standby
/// terms; attaching a [`DramModel`] adds a term that *grows* with `B`
/// (retention), which is what ultimately bounds the achievable saving.
///
/// ```
/// use memstream_core::{BestEffortPolicy, EnergyModel};
/// use memstream_device::MemsDevice;
/// use memstream_units::{BitRate, DataSize};
/// use memstream_workload::Workload;
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let device = MemsDevice::table1();
/// let workload = Workload::paper_default(BitRate::from_kbps(1024.0));
/// let model = EnergyModel::new(&device, workload, BestEffortPolicy::AtReadWrite, None);
///
/// let break_even = model.break_even_buffer()?;
/// assert!(break_even.kibibytes() > 1.0 && break_even.kibibytes() < 4.0);
/// // Buffering beyond break-even saves energy:
/// assert!(model.saving(break_even * 10.0)? > 0.5);
/// # Ok(())
/// # }
/// ```
/// The type parameter `E` defaults to the trait object, so existing
/// `EnergyModel<'a>` signatures keep meaning "any device behind `&dyn`";
/// instantiating with a concrete device type (`EnergyModel<'a, MemsDevice>`)
/// monomorphizes every power/rate accessor — the grid's series fast path.
#[derive(Debug)]
pub struct EnergyModel<'a, E: EnergyModelled + ?Sized = dyn EnergyModelled + 'a> {
    device: &'a E,
    workload: Workload,
    policy: BestEffortPolicy,
    dram: Option<&'a DramModel>,
}

impl<E: EnergyModelled + ?Sized> Clone for EnergyModel<'_, E> {
    fn clone(&self) -> Self {
        EnergyModel {
            device: self.device,
            workload: self.workload,
            policy: self.policy,
            dram: self.dram,
        }
    }
}

impl<'a, E: EnergyModelled + ?Sized> EnergyModel<'a, E> {
    /// Creates an energy model for `device` under `workload`.
    ///
    /// Pass a [`DramModel`] to include buffer retention/access energy as the
    /// paper does (it then verifies the "negligible" claim numerically).
    pub fn new(
        device: &'a E,
        workload: Workload,
        policy: BestEffortPolicy,
        dram: Option<&'a DramModel>,
    ) -> Self {
        EnergyModel {
            device,
            workload,
            policy,
            dram,
        }
    }

    /// The device under model.
    #[must_use]
    pub fn device(&self) -> &E {
        self.device
    }

    /// The workload under model.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The best-effort accounting policy.
    #[must_use]
    pub fn policy(&self) -> BestEffortPolicy {
        self.policy
    }

    /// Power charged to best-effort time under the model's policy.
    fn best_effort_power(&self) -> memstream_units::Power {
        match self.policy {
            BestEffortPolicy::AtReadWrite | BestEffortPolicy::Excluded => {
                self.device.power(PowerState::ReadWrite)
            }
            BestEffortPolicy::AtIdle => self.device.power(PowerState::Idle),
        }
    }

    /// `α` of `Em(B) = α/B + β (+ δ·B)`: the buffer-amortised overhead
    /// energy, `Eoh − toh·Psb` joules.
    fn alpha(&self) -> f64 {
        let psb = self.device.power(PowerState::Standby).watts();
        self.device.overhead_energy().joules() - self.device.overhead_time().seconds() * psb
    }

    /// `β`: the per-bit energy floor of the MEMS side (transfer +
    /// best-effort + standby), joules per bit.
    fn beta(&self) -> f64 {
        let tau = per_bit_period(self.device, &self.workload);
        let rho = per_bit_read_write(self.device, &self.workload);
        let be = effective_best_effort(&self.workload, self.policy).fraction();
        let p_rw = self.device.power(PowerState::ReadWrite).watts();
        let p_sb = self.device.power(PowerState::Standby).watts();
        let p_be = self.best_effort_power().watts();
        rho * (p_rw - p_sb) + be * tau * (p_be - p_sb) + tau * p_sb
    }

    /// Constant per-bit DRAM access energy (`2` transfers per bit:
    /// device→DRAM and DRAM→decoder), joules per bit.
    fn dram_access_per_bit(&self) -> f64 {
        self.dram
            .map(|d| 2.0 * d.access_energy(DataSize::from_bits(1.0)).joules())
            .unwrap_or(0.0)
    }

    /// `δ`: per-bit DRAM retention energy slope, joules per bit per
    /// buffered bit. The only term of `Em` that *grows* with `B`.
    fn delta(&self) -> f64 {
        self.dram
            .map(|d| {
                let density_w_per_bit =
                    d.retention_power(DataSize::from_mebibytes(1.0)).watts() / BITS_PER_MIB;
                density_w_per_bit * per_bit_period(self.device, &self.workload)
            })
            .unwrap_or(0.0)
    }

    /// `γ`: per-bit energy of the always-on baseline (reads at `P_RW`,
    /// idles otherwise; never seeks or sleeps), joules per bit.
    fn gamma(&self) -> f64 {
        let tau = per_bit_period(self.device, &self.workload);
        let rho = per_bit_read_write(self.device, &self.workload);
        let p_rw = self.device.power(PowerState::ReadWrite).watts();
        let p_idle = self.device.power(PowerState::Idle).watts();
        rho * p_rw + (tau - rho) * p_idle
    }

    /// Per-bit energy of the always-on baseline device.
    #[must_use]
    pub fn always_on_per_bit(&self) -> EnergyPerBit {
        EnergyPerBit::from_joules_per_bit(self.gamma())
    }

    /// Full energy account of one cycle with buffer `buffer`.
    ///
    /// # Errors
    ///
    /// Propagates cycle-construction errors (rate too high, buffer too
    /// small); see [`RefillCycle::compute`].
    pub fn cycle_energy(&self, buffer: DataSize) -> Result<CycleEnergy, ModelError> {
        let cycle = RefillCycle::compute(self.device, &self.workload, buffer, self.policy)?;
        let dram = self
            .dram
            .map(|d| d.cycle_energy(buffer, cycle.period(), buffer * 2.0).total())
            .unwrap_or(Energy::ZERO);
        Ok(CycleEnergy {
            overhead: self.device.overhead_energy(),
            read_write: self.device.power(PowerState::ReadWrite) * cycle.read_write_time(),
            best_effort: self.best_effort_power() * cycle.best_effort_time(),
            standby: self.device.power(PowerState::Standby) * cycle.standby_time(),
            dram,
            buffer,
        })
    }

    /// The paper's `Em(B)` (Eq. (1), plus the DRAM term when attached).
    ///
    /// # Errors
    ///
    /// Propagates cycle-construction errors; see [`RefillCycle::compute`].
    pub fn per_bit_energy(&self, buffer: DataSize) -> Result<EnergyPerBit, ModelError> {
        Ok(self.cycle_energy(buffer)?.per_bit())
    }

    /// Energy saving relative to the always-on baseline:
    /// `1 − Em(B)/Eon`. Negative for buffers below break-even.
    ///
    /// # Errors
    ///
    /// Propagates cycle-construction errors; see [`RefillCycle::compute`].
    pub fn saving(&self, buffer: DataSize) -> Result<f64, ModelError> {
        Ok(1.0 - self.per_bit_energy(buffer)?.joules_per_bit() / self.gamma())
    }

    /// The supremum of the achievable saving over all buffer sizes.
    ///
    /// Without a DRAM model this is the `B → ∞` asymptote
    /// `1 − β/γ`; with DRAM the retention slope turns it into a maximum at
    /// a finite optimum buffer.
    #[must_use]
    pub fn max_saving(&self) -> f64 {
        let floor =
            self.beta() + self.dram_access_per_bit() + 2.0 * (self.alpha() * self.delta()).sqrt();
        1.0 - floor / self.gamma()
    }

    /// The buffer at which per-bit energy is minimal (finite only when a
    /// DRAM model makes large buffers costly).
    #[must_use]
    pub fn optimal_buffer(&self) -> Option<DataSize> {
        let delta = self.delta();
        (delta > 0.0).then(|| DataSize::from_bits((self.alpha() / delta).sqrt()))
    }

    /// The break-even buffer of §III-A.1: the size at which cycling the
    /// device (seek, refill, shutdown, standby) costs exactly as much as
    /// leaving it always-on for the same period, with best-effort service
    /// charged identically on both sides (so it cancels).
    ///
    /// For the Table I device this is 0.07 kB at 32 kbps and ~9 kB at
    /// 4096 kbps; the calibrated 1.8-inch disk lands three orders of
    /// magnitude higher.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RateExceedsBandwidth`] if the stream rate
    /// leaves no refill bandwidth, and [`ModelError::InfeasibleGoal`] if
    /// standby cannot undercut idling (shutdown never pays off).
    pub fn break_even_buffer(&self) -> Result<DataSize, ModelError> {
        let p_idle = self.device.power(PowerState::Idle).watts();
        let p_sb = self.device.power(PowerState::Standby).watts();
        let toh = self.device.overhead_time().seconds();
        let eoh = self.device.overhead_energy().joules();
        if p_idle <= p_sb {
            return Err(ModelError::InfeasibleGoal {
                requirement: Requirement::Energy,
                reason: "standby power does not undercut idle power".to_owned(),
            });
        }
        // tsb* = (Eoh − toh·Pidle) / (Pidle − Psb); B* = (tsb* + toh) / ((1−be)τ − ρ).
        let tsb_star = ((eoh - toh * p_idle) / (p_idle - p_sb)).max(0.0);
        let tau = per_bit_period(self.device, &self.workload);
        let rho = per_bit_read_write(self.device, &self.workload);
        let be = effective_best_effort(&self.workload, self.policy).fraction();
        let denom = (1.0 - be) * tau - rho;
        if denom <= 0.0 {
            return Err(ModelError::RateExceedsBandwidth {
                stream_bps: self.workload.rate().bits_per_second(),
                available_bps: (self.device.media_rate() * (1.0 - be)).bits_per_second(),
            });
        }
        Ok(DataSize::from_bits((tsb_star + toh) / denom))
    }

    /// The inverse function of Eq. (1): the smallest buffer achieving an
    /// energy saving of at least `target` — the "energy-efficiency buffer"
    /// curve of Fig. 3.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] when no buffer size reaches
    /// the target (the vertical "X" boundary of Fig. 3a), and
    /// [`ModelError::RateExceedsBandwidth`] when the rate itself is
    /// unsustainable.
    pub fn min_buffer_for_saving(&self, target: Ratio) -> Result<DataSize, ModelError> {
        let target_per_bit = (1.0 - target.fraction()) * self.gamma();
        let alpha = self.alpha();
        let beta = self.beta() + self.dram_access_per_bit();
        let delta = self.delta();
        let floor = RefillCycle::min_buffer(self.device, &self.workload, self.policy)?;

        let headroom = target_per_bit - beta;
        let solution_bits = if delta > 0.0 {
            // δB² − headroom·B + α = 0; smallest positive root.
            let discriminant = headroom * headroom - 4.0 * delta * alpha;
            if headroom <= 0.0 || discriminant < 0.0 {
                return Err(self.infeasible_saving(target));
            }
            (headroom - discriminant.sqrt()) / (2.0 * delta)
        } else {
            if headroom <= 0.0 {
                return Err(self.infeasible_saving(target));
            }
            alpha / headroom
        };
        Ok(DataSize::from_bits(solution_bits).max(floor))
    }

    fn infeasible_saving(&self, target: Ratio) -> ModelError {
        ModelError::InfeasibleGoal {
            requirement: Requirement::Energy,
            reason: format!(
                "no buffer reaches a {} saving at {}; the achievable maximum is {:.1}%",
                target,
                self.workload.rate(),
                self.max_saving() * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_device::{DiskDevice, MemsDevice};
    use memstream_units::BitRate;
    use proptest::prelude::*;

    fn model_at(kbps: f64) -> (MemsDevice, Workload) {
        (
            MemsDevice::table1(),
            Workload::paper_default(BitRate::from_kbps(kbps)),
        )
    }

    #[test]
    fn always_on_per_bit_matches_figure_2a_ceiling() {
        // Fig. 2a's y-axis tops out around 120 nJ/b at 1024 kbps.
        let (d, w) = model_at(1024.0);
        let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        let nj = m.always_on_per_bit().nanojoules_per_bit();
        assert!((nj - 120.0).abs() < 5.0, "got {nj} nJ/b");
    }

    #[test]
    fn equation_one_term_by_term() {
        // Cross-check per_bit_energy against a literal transcription of
        // Eq. (1) (best-effort excluded, as the equation is written).
        let (d, w) = model_at(1024.0);
        let m = EnergyModel::new(&d, w, BestEffortPolicy::Excluded, None);
        let b = DataSize::from_kibibytes(20.0);

        let bits = b.bits();
        let rm = 102.4e6;
        let rs = 1.024e6;
        let tm = bits / (rm - rs) * (rm / rs);
        let t_rw = bits / (rm - rs);
        let toh = 0.003;
        let (poh, psb, prw) = (0.672, 0.005, 0.316);
        let eq1 = toh / bits * (poh - psb) + t_rw / bits * (prw - psb) + tm / bits * psb;

        let got = m.per_bit_energy(b).unwrap().joules_per_bit();
        assert!((got - eq1).abs() < 1e-15, "got {got}, eq1 {eq1}");
    }

    #[test]
    fn break_even_matches_paper_range() {
        // §III-A.1: 0.07 kB at 32 kbps up to ~9 kB at 4096 kbps.
        let d = MemsDevice::table1();
        let at = |kbps: f64| {
            let w = Workload::paper_default(BitRate::from_kbps(kbps));
            EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None)
                .break_even_buffer()
                .unwrap()
                .kibibytes()
        };
        let low = at(32.0);
        let high = at(4096.0);
        assert!((0.06..0.08).contains(&low), "32 kbps break-even {low} kB");
        assert!(
            (8.0..10.0).contains(&high),
            "4096 kbps break-even {high} kB"
        );
    }

    #[test]
    fn disk_break_even_is_three_orders_of_magnitude_larger() {
        let mems = MemsDevice::table1();
        let disk = DiskDevice::calibrated_1p8_inch();
        let w = Workload::paper_default(BitRate::from_kbps(1024.0));
        let bem = EnergyModel::new(&mems, w, BestEffortPolicy::AtReadWrite, None)
            .break_even_buffer()
            .unwrap();
        let bed = EnergyModel::new(&disk, w, BestEffortPolicy::AtReadWrite, None)
            .break_even_buffer()
            .unwrap();
        let ratio = bed / bem;
        assert!((300.0..3000.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn saving_is_zero_at_break_even() {
        let (d, w) = model_at(1024.0);
        let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        let be = m.break_even_buffer().unwrap();
        // At break-even the shutdown cycle ties the *with-best-effort*
        // baseline; against the plain baseline used by `saving` the result
        // is near zero (the BE term is the small residual).
        let saving = m.saving(be).unwrap();
        assert!(saving.abs() < 0.20, "saving at break-even: {saving}");
        // Well above break-even the saving is decisively positive.
        assert!(m.saving(be * 20.0).unwrap() > 0.5);
    }

    #[test]
    fn eighty_percent_saving_feasible_at_1024_but_not_2048() {
        // The Fig. 3a boundary: E = 80% is feasible up to slightly above
        // 1000 kbps and infeasible beyond.
        let d = MemsDevice::table1();
        let at = |kbps: f64| {
            let w = Workload::paper_default(BitRate::from_kbps(kbps));
            EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None)
                .min_buffer_for_saving(Ratio::from_percent(80.0))
        };
        assert!(at(1024.0).is_ok(), "80% should be feasible at 1024 kbps");
        assert!(at(2048.0).is_err(), "80% should be infeasible at 2048 kbps");
    }

    #[test]
    fn seventy_percent_saving_feasible_across_the_whole_range() {
        // Fig. 3c: with E = 70% the energy goal is satisfiable at 4096 kbps.
        let d = MemsDevice::table1();
        let w = Workload::paper_default(BitRate::from_kbps(4096.0));
        let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        assert!(m.min_buffer_for_saving(Ratio::from_percent(70.0)).is_ok());
    }

    #[test]
    fn min_buffer_for_saving_is_tight() {
        let (d, w) = model_at(512.0);
        let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        let target = Ratio::from_percent(75.0);
        let b = m.min_buffer_for_saving(target).unwrap();
        assert!(m.saving(b).unwrap() >= target.fraction() - 1e-9);
        assert!(m.saving(b * 0.95).unwrap() < target.fraction());
    }

    #[test]
    fn dram_term_is_negligible_at_paper_scales() {
        // The paper's claim: DRAM energy present but negligible.
        let (d, w) = model_at(1024.0);
        let dram = DramModel::micron_ddr_mobile();
        let with = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, Some(&dram));
        let without = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        let b = DataSize::from_kibibytes(20.0);
        let e_with = with.per_bit_energy(b).unwrap().joules_per_bit();
        let e_without = without.per_bit_energy(b).unwrap().joules_per_bit();
        assert!(e_with > e_without);
        assert!((e_with - e_without) / e_without < 0.02, "DRAM adds <2%");
    }

    #[test]
    fn dram_makes_the_optimum_finite() {
        let (d, w) = model_at(1024.0);
        let dram = DramModel::micron_ddr_mobile();
        let with = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, Some(&dram));
        let without = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        assert!(with.optimal_buffer().is_some());
        assert!(without.optimal_buffer().is_none());
        assert!(with.max_saving() < without.max_saving());
    }

    #[test]
    fn cycle_energy_breakdown_sums() {
        let (d, w) = model_at(1024.0);
        let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
        let ce = m.cycle_energy(DataSize::from_kibibytes(20.0)).unwrap();
        let sum = ce.overhead + ce.read_write + ce.best_effort + ce.standby + ce.dram;
        assert!((sum.joules() - ce.total().joules()).abs() < 1e-15);
        assert_eq!(ce.dram, Energy::ZERO);
    }

    proptest! {
        #[test]
        fn per_bit_energy_decreases_with_buffer_without_dram(kib in 3.0..500.0f64) {
            let (d, w) = model_at(1024.0);
            let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
            let small = m.per_bit_energy(DataSize::from_kibibytes(kib)).unwrap();
            let big = m.per_bit_energy(DataSize::from_kibibytes(kib * 2.0)).unwrap();
            prop_assert!(big < small);
        }

        #[test]
        fn saving_monotone_in_buffer_without_dram(kib in 3.0..500.0f64, kbps in 64.0..4096.0f64) {
            let (d, w) = model_at(kbps);
            let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
            let b1 = DataSize::from_kibibytes(kib);
            let b2 = DataSize::from_kibibytes(kib * 1.5);
            if let (Ok(s1), Ok(s2)) = (m.saving(b1), m.saving(b2)) {
                prop_assert!(s2 >= s1 - 1e-12);
            }
        }

        #[test]
        fn max_saving_bounds_all_savings(kib in 3.0..2000.0f64) {
            let (d, w) = model_at(1024.0);
            let dram = DramModel::micron_ddr_mobile();
            let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, Some(&dram));
            if let Ok(s) = m.saving(DataSize::from_kibibytes(kib)) {
                prop_assert!(s <= m.max_saving() + 1e-9);
            }
        }

        #[test]
        fn inverse_saving_roundtrips(pct in 10.0..78.0f64) {
            let (d, w) = model_at(1024.0);
            let m = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
            let target = Ratio::from_percent(pct);
            let b = m.min_buffer_for_saving(target).unwrap();
            prop_assert!(m.saving(b).unwrap() >= target.fraction() - 1e-9);
        }
    }
}
