//! Human-readable design reports.
//!
//! [`DesignReport`] assembles everything the paper's methodology says
//! about one operating point — the forward models at a chosen buffer, the
//! break-even analysis, and (optionally) the inverse answer for a design
//! goal — into one displayable record. The bench harness's `custom`
//! subcommand is a thin CLI wrapper around it.

use std::fmt;

use memstream_units::{DataSize, EnergyPerBit, Ratio, Years};

use crate::dimension::BufferPlan;
use crate::error::ModelError;
use crate::goal::DesignGoal;
use crate::system::SystemModel;

/// A complete analysis of one operating point.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// The system description line.
    pub system: String,
    /// The break-even buffer, if the rate is sustainable.
    pub break_even: Result<DataSize, ModelError>,
    /// The supremum of the achievable energy saving at this rate.
    pub max_saving: f64,
    /// Analysis at a specific buffer, if one was requested.
    pub at_buffer: Option<BufferPointReport>,
    /// The inverse answer for a goal, if one was requested.
    pub plan: Option<Result<BufferPlan, ModelError>>,
}

/// The forward models evaluated at one buffer size.
#[derive(Debug, Clone)]
pub struct BufferPointReport {
    /// The buffer analysed.
    pub buffer: DataSize,
    /// `Em(B)`, if the buffer sustains a cycle.
    pub per_bit_energy: Result<EnergyPerBit, ModelError>,
    /// Saving versus always-on.
    pub saving: Result<f64, ModelError>,
    /// Capacity utilisation.
    pub utilization: Ratio,
    /// Springs lifetime.
    pub springs: Years,
    /// Probes lifetime.
    pub probes: Years,
}

impl DesignReport {
    /// Builds a report for `model`, optionally analysing a specific
    /// `buffer` and optionally answering a design `goal`.
    #[must_use]
    pub fn build(model: &SystemModel, buffer: Option<DataSize>, goal: Option<&DesignGoal>) -> Self {
        let at_buffer = buffer.map(|b| BufferPointReport {
            buffer: b,
            per_bit_energy: model.per_bit_energy(b),
            saving: model.saving(b),
            utilization: model.utilization(b),
            springs: model.springs_lifetime(b),
            probes: model.probes_lifetime(b),
        });
        DesignReport {
            system: model.to_string(),
            break_even: model.break_even_buffer(),
            max_saving: model.energy_model().max_saving(),
            at_buffer,
            plan: goal.map(|g| model.dimension(g)),
        }
    }
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system: {}", self.system)?;
        match &self.break_even {
            Ok(b) => writeln!(f, "break-even buffer: {b}")?,
            Err(e) => writeln!(f, "break-even buffer: {e}")?,
        }
        writeln!(
            f,
            "achievable saving at this rate: up to {:.1}%",
            self.max_saving * 100.0
        )?;
        if let Some(p) = &self.at_buffer {
            writeln!(f, "at a {} buffer:", p.buffer)?;
            match &p.per_bit_energy {
                Ok(e) => writeln!(f, "  per-bit energy   {e}")?,
                Err(e) => writeln!(f, "  per-bit energy   unavailable: {e}")?,
            }
            match &p.saving {
                Ok(s) => writeln!(f, "  energy saving    {:.1}%", s * 100.0)?,
                Err(e) => writeln!(f, "  energy saving    unavailable: {e}")?,
            }
            writeln!(f, "  utilisation      {}", p.utilization)?;
            writeln!(f, "  springs lifetime {}", p.springs)?;
            writeln!(f, "  probes lifetime  {}", p.probes)?;
            writeln!(f, "  device lifetime  {}", p.springs.min(p.probes))?;
        }
        if let Some(plan) = &self.plan {
            match plan {
                Ok(plan) => {
                    writeln!(f, "design answer: {plan}")?;
                    for (req, b) in plan.requirements() {
                        writeln!(f, "  {req:<22} needs {b}")?;
                    }
                }
                Err(e) => writeln!(f, "design answer: {e}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_units::BitRate;

    fn model() -> SystemModel {
        SystemModel::paper_default(BitRate::from_kbps(1024.0))
    }

    #[test]
    fn full_report_mentions_every_section() {
        let m = model();
        let report = DesignReport::build(
            &m,
            Some(DataSize::from_kibibytes(20.0)),
            Some(&DesignGoal::fig3b()),
        );
        let text = report.to_string();
        assert!(text.contains("break-even buffer"));
        assert!(text.contains("per-bit energy"));
        assert!(text.contains("springs lifetime"));
        assert!(text.contains("dictated by"));
    }

    #[test]
    fn minimal_report_skips_optional_sections() {
        let report = DesignReport::build(&model(), None, None);
        let text = report.to_string();
        assert!(!text.contains("at a "));
        assert!(!text.contains("design answer"));
        assert!(text.contains("achievable saving"));
    }

    #[test]
    fn infeasible_goal_is_reported_not_panicked() {
        let report = DesignReport::build(
            &model().with_rate(BitRate::from_kbps(4096.0)),
            None,
            Some(&DesignGoal::fig3a()),
        );
        let text = report.to_string();
        assert!(text.contains("infeasible"), "{text}");
    }

    #[test]
    fn undersized_buffer_is_reported_not_panicked() {
        let report = DesignReport::build(&model(), Some(DataSize::from_bits(64.0)), None);
        let text = report.to_string();
        assert!(text.contains("unavailable"), "{text}");
    }
}
