//! Design goals `(E, C, L)` and the requirements that dictate buffers.

use std::fmt;

use memstream_units::{Ratio, Years};

/// The requirements that can dictate the buffer size (the region labels
/// `E`, `C`, `Lsp`, `Lpb` across the top of Fig. 3, plus the erase-budget
/// label `Lpe` of the flash extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Requirement {
    /// Capacity utilisation (`C`): sync-bit amortisation needs big sectors.
    Capacity,
    /// Energy saving (`E`): overhead amortisation needs big buffers.
    Energy,
    /// Springs lifetime (`Lsp`): fewer refills per year need big buffers.
    SpringsLifetime,
    /// Probes lifetime (`Lpb`): write cycles wasted on sync bits need big
    /// sectors.
    ProbesLifetime,
    /// Erase-block lifetime (`Lpe`): write amplification wasted on partial
    /// block programs needs big, aligned bursts.
    EraseLifetime,
}

impl Requirement {
    /// All requirements: the paper's four in the order it lists them,
    /// then the flash extension.
    pub const ALL: [Requirement; 5] = [
        Requirement::Energy,
        Requirement::Capacity,
        Requirement::SpringsLifetime,
        Requirement::ProbesLifetime,
        Requirement::EraseLifetime,
    ];

    /// The short label used across the top of Fig. 3.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Requirement::Energy => "E",
            Requirement::Capacity => "C",
            Requirement::SpringsLifetime => "Lsp",
            Requirement::ProbesLifetime => "Lpb",
            Requirement::EraseLifetime => "Lpe",
        }
    }
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Requirement::Energy => "energy saving",
            Requirement::Capacity => "capacity utilisation",
            Requirement::SpringsLifetime => "springs lifetime",
            Requirement::ProbesLifetime => "probes lifetime",
            Requirement::EraseLifetime => "erase-block lifetime",
        };
        f.write_str(name)
    }
}

/// A design goal of §IV-C: a combination of energy-saving, capacity and
/// lifetime targets. Unset components are simply not constrained.
///
/// ```
/// use memstream_core::DesignGoal;
/// use memstream_units::{Ratio, Years};
///
/// // The paper's first goal: (E = 80%, C = 88%, L = 7).
/// let goal = DesignGoal::new()
///     .energy_saving(Ratio::from_percent(80.0))
///     .capacity_utilization(Ratio::from_percent(88.0))
///     .lifetime(Years::new(7.0));
/// assert_eq!(goal.to_string(), "(E = 80.0%, C = 88.0%, L = 7.00 years)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DesignGoal {
    energy_saving: Option<Ratio>,
    capacity_utilization: Option<Ratio>,
    lifetime: Option<Years>,
}

impl DesignGoal {
    /// An empty goal; chain setters to add targets.
    #[must_use]
    pub fn new() -> Self {
        DesignGoal::default()
    }

    /// The paper's Fig. 3a goal: `(E = 80%, C = 88%, L = 7)`.
    #[must_use]
    pub fn fig3a() -> Self {
        DesignGoal::new()
            .energy_saving(Ratio::from_percent(80.0))
            .capacity_utilization(Ratio::from_percent(88.0))
            .lifetime(Years::new(7.0))
    }

    /// The paper's Fig. 3b/3c goal: `(E = 70%, C = 88%, L = 7)`.
    #[must_use]
    pub fn fig3b() -> Self {
        DesignGoal::new()
            .energy_saving(Ratio::from_percent(70.0))
            .capacity_utilization(Ratio::from_percent(88.0))
            .lifetime(Years::new(7.0))
    }

    /// Sets the energy-saving target `E` (relative to always-on).
    #[must_use]
    pub fn energy_saving(mut self, e: Ratio) -> Self {
        self.energy_saving = Some(e);
        self
    }

    /// Sets the capacity-utilisation target `C`.
    #[must_use]
    pub fn capacity_utilization(mut self, c: Ratio) -> Self {
        self.capacity_utilization = Some(c);
        self
    }

    /// Sets the lifetime target `L` in years.
    #[must_use]
    pub fn lifetime(mut self, l: Years) -> Self {
        self.lifetime = Some(l);
        self
    }

    /// The energy-saving target, if set.
    #[must_use]
    pub fn energy_saving_target(&self) -> Option<Ratio> {
        self.energy_saving
    }

    /// The capacity target, if set.
    #[must_use]
    pub fn capacity_target(&self) -> Option<Ratio> {
        self.capacity_utilization
    }

    /// The lifetime target, if set.
    #[must_use]
    pub fn lifetime_target(&self) -> Option<Years> {
        self.lifetime
    }

    /// Whether the goal constrains anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.energy_saving.is_none()
            && self.capacity_utilization.is_none()
            && self.lifetime.is_none()
    }
}

impl fmt::Display for DesignGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(e) = self.energy_saving {
            parts.push(format!("E = {e}"));
        }
        if let Some(c) = self.capacity_utilization {
            parts.push(format!("C = {c}"));
        }
        if let Some(l) = self.lifetime {
            parts.push(format!("L = {l}"));
        }
        if parts.is_empty() {
            write!(f, "(unconstrained)")
        } else {
            write!(f, "({})", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_goals_match_the_paper() {
        let a = DesignGoal::fig3a();
        assert_eq!(a.energy_saving_target(), Some(Ratio::from_percent(80.0)));
        assert_eq!(a.capacity_target(), Some(Ratio::from_percent(88.0)));
        assert_eq!(a.lifetime_target(), Some(Years::new(7.0)));

        let b = DesignGoal::fig3b();
        assert_eq!(b.energy_saving_target(), Some(Ratio::from_percent(70.0)));
    }

    #[test]
    fn empty_goal_is_detectable() {
        assert!(DesignGoal::new().is_empty());
        assert!(!DesignGoal::fig3a().is_empty());
        assert_eq!(DesignGoal::new().to_string(), "(unconstrained)");
    }

    #[test]
    fn requirement_labels_match_figure_3() {
        assert_eq!(Requirement::Energy.label(), "E");
        assert_eq!(Requirement::Capacity.label(), "C");
        assert_eq!(Requirement::SpringsLifetime.label(), "Lsp");
        assert_eq!(Requirement::ProbesLifetime.label(), "Lpb");
    }

    #[test]
    fn partial_goals_render_partially() {
        let g = DesignGoal::new().lifetime(Years::new(4.0));
        assert_eq!(g.to_string(), "(L = 4.00 years)");
    }
}
