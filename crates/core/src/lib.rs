//! Buffering model for streaming MEMS storage.
//!
//! This crate is the primary contribution of the reproduction of
//! **Khatib & Abelmann, "Buffering Implications for the Design Space of
//! Streaming MEMS Storage" (DATE 2011)**. It models a MEMS storage device
//! fronted by a DRAM streaming buffer (Fig. 1 of the paper) and expresses
//! three non-functional properties as functions of the buffer size `B`:
//!
//! * **energy** — per-bit energy of the shutdown cycle, Eq. (1)
//!   ([`EnergyModel`]), including the break-even buffer of §III-A.1;
//! * **capacity** — formatted utilisation under the `B ≥ Su` coupling,
//!   Eqs. (2)–(4) ([`CapacityModel`]);
//! * **lifetime** — springs (Eq. (5)) and probes (Eq. (6)) wear
//!   ([`LifetimeModel`]).
//!
//! On top sit the paper's *inverse functions* ([`BufferDimensioner`]):
//! given a design goal `(E, C, L)`, find the minimal buffer (or prove the
//! goal infeasible) and report which requirement *dictates* the buffer —
//! the machinery behind Fig. 3.
//!
//! # Quick start
//!
//! ```
//! use memstream_core::{DesignGoal, SystemModel};
//! use memstream_units::{BitRate, Ratio, Years};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
//! let goal = DesignGoal::new()
//!     .energy_saving(Ratio::from_percent(70.0))
//!     .capacity_utilization(Ratio::from_percent(88.0))
//!     .lifetime(Years::new(7.0));
//! let plan = model.dimension(&goal)?;
//! println!("buffer: {} (dictated by {})", plan.buffer(), plan.dominant());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod cycle;
mod device_model;
mod dimension;
mod energy;
mod error;
mod explore;
mod goal;
mod lifetime;
mod plot;
mod report;
mod sensitivity;
mod system;
mod tradeoff;

pub use capacity::CapacityModel;
pub use cycle::{BestEffortPolicy, RefillCycle};
pub use device_model::{AnalyticModel, CapabilityModel};
pub use dimension::{BufferDimensioner, BufferPlan};
pub use energy::{CycleEnergy, EnergyModel};
pub use error::ModelError;
pub use explore::{
    feasibility_map, log_spaced_rates, BufferSweepPoint, FeasibilityMap, RateSweepPoint,
    SweepBuilder,
};
pub use goal::{DesignGoal, Requirement};
pub use lifetime::{duty_cycle_lifetime, min_buffer_for_duty_cycles, LifetimeModel};
pub use plot::{render_ascii_chart, to_csv, AsciiChart, Axis, Series};
pub use report::{BufferPointReport, DesignReport};
pub use sensitivity::{buffer_sensitivity, SensitivityRow, SENSITIVITY_PARAMETERS};
pub use system::SystemModel;
pub use tradeoff::{saving_frontier, FrontierPoint, SavingFrontier};

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_units::BitRate;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_sync() {
        assert_send_sync::<SystemModel>();
        assert_send_sync::<DesignGoal>();
        assert_send_sync::<BufferPlan>();
        assert_send_sync::<ModelError>();
        assert_send_sync::<Requirement>();
    }

    #[test]
    fn paper_default_model_constructs() {
        let m = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        assert_eq!(m.workload().rate(), BitRate::from_kbps(1024.0));
    }
}
