//! Parameter sensitivity of the required buffer.
//!
//! The paper's conclusion — "enhancement in probes lifetime is essentially
//! needed" — is a sensitivity claim: of all the device parameters, `Dpb`
//! is the one whose improvement moves the design space most. This module
//! makes such claims quantitative: for a system and goal it estimates the
//! **elasticity** `ε = ∂ln B_req / ∂ln p` of the required buffer with
//! respect to each parameter `p` by central differences, so `ε = −1` means
//! "doubling the parameter halves the buffer" and `ε = 0` means the
//! parameter is not binding at this operating point.

use memstream_device::{MemsDevice, MemsDeviceBuilder, PowerState};
use memstream_units::Ratio;
use memstream_workload::{StreamSpec, Workload};

use crate::goal::DesignGoal;
use crate::system::SystemModel;

/// Elasticity of the required buffer with respect to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Which parameter was perturbed.
    pub parameter: &'static str,
    /// `∂ln B_req / ∂ln p`, or `None` if a perturbed configuration made
    /// the goal infeasible (the elasticity is effectively a cliff there).
    pub elasticity: Option<f64>,
}

/// Rebuilds a builder seeded with every observable parameter of `d`.
fn builder_from(d: &MemsDevice) -> MemsDeviceBuilder {
    use memstream_device::EnergyModelled as _;
    MemsDevice::builder()
        .array(*d.array())
        .capacity(d.capacity())
        .per_probe_rate(d.per_probe_rate())
        .seek_time(d.seek_time())
        .shutdown_time(d.shutdown_time())
        .io_overhead_time(d.io_overhead_time())
        .read_write_power(d.power(PowerState::ReadWrite))
        .seek_power(d.power(PowerState::Seek))
        .standby_power(d.power(PowerState::Standby))
        .idle_power(d.power(PowerState::Idle))
        .shutdown_power(d.power(PowerState::Shutdown))
        .probe_write_cycles(d.probe_write_cycles())
        .spring_duty_cycles(d.spring_duty_cycles())
}

/// Applies a multiplicative perturbation of one named parameter.
fn perturbed(model: &SystemModel, parameter: &str, factor: f64) -> Option<SystemModel> {
    use memstream_device::EnergyModelled as _;
    let d = model.device();
    let device = match parameter {
        "spring duty cycles" => Some(d.with_spring_duty_cycles(d.spring_duty_cycles() * factor)),
        "probe write cycles" => Some(d.with_probe_write_cycles(d.probe_write_cycles() * factor)),
        "idle power" => builder_from(d)
            .idle_power(d.power(PowerState::Idle) * factor)
            .build()
            .ok(),
        "standby power" => builder_from(d)
            .standby_power(d.power(PowerState::Standby) * factor)
            .build()
            .ok(),
        "overhead power" => builder_from(d)
            .seek_power(d.power(PowerState::Seek) * factor)
            .shutdown_power(d.power(PowerState::Shutdown) * factor)
            .build()
            .ok(),
        "media rate" => builder_from(d)
            .per_probe_rate(d.per_probe_rate() * factor)
            .build()
            .ok(),
        _ => None,
    };
    if let Some(device) = device {
        return Some(model.with_device(device));
    }
    // Workload-side parameters.
    let w = model.workload();
    match parameter {
        "write fraction" => {
            let scaled = (w.write_fraction().fraction() * factor).min(1.0);
            let stream = StreamSpec::new(w.rate(), Ratio::from_fraction(scaled)).ok()?;
            let workload = Workload::new(stream, w.calendar(), w.best_effort_fraction()).ok()?;
            Some(SystemModel::new(
                model.device().clone(),
                workload,
                *model.format(),
                model.dram().cloned(),
                model.policy(),
            ))
        }
        "best-effort fraction" => {
            let scaled = (w.best_effort_fraction().fraction() * factor).min(0.99);
            let workload =
                Workload::new(w.stream(), w.calendar(), Ratio::from_fraction(scaled)).ok()?;
            Some(SystemModel::new(
                model.device().clone(),
                workload,
                *model.format(),
                model.dram().cloned(),
                model.policy(),
            ))
        }
        _ => None,
    }
}

/// The parameters [`buffer_sensitivity`] perturbs.
pub const SENSITIVITY_PARAMETERS: [&str; 8] = [
    "spring duty cycles",
    "probe write cycles",
    "idle power",
    "standby power",
    "overhead power",
    "media rate",
    "write fraction",
    "best-effort fraction",
];

/// Estimates `∂ln B_req / ∂ln p` for every parameter in
/// [`SENSITIVITY_PARAMETERS`] by a central difference of relative step
/// `rel_step` (e.g. `0.05` for ±5 %).
///
/// # Panics
///
/// Panics if `rel_step` is not in `(0, 0.5)`.
#[must_use]
pub fn buffer_sensitivity(
    model: &SystemModel,
    goal: &DesignGoal,
    rel_step: f64,
) -> Vec<SensitivityRow> {
    assert!(
        rel_step > 0.0 && rel_step < 0.5,
        "relative step must lie in (0, 0.5), got {rel_step}"
    );
    SENSITIVITY_PARAMETERS
        .iter()
        .map(|&parameter| {
            let elasticity = (|| {
                let up = perturbed(model, parameter, 1.0 + rel_step)?
                    .dimension(goal)
                    .ok()?
                    .buffer();
                let down = perturbed(model, parameter, 1.0 - rel_step)?
                    .dimension(goal)
                    .ok()?
                    .buffer();
                let dln_b = (up.bits() / down.bits()).ln();
                let dln_p = ((1.0 + rel_step) / (1.0 - rel_step)).ln();
                Some(dln_b / dln_p)
            })();
            SensitivityRow {
                parameter,
                elasticity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_units::BitRate;

    fn elasticity_of(rows: &[SensitivityRow], name: &str) -> f64 {
        rows.iter()
            .find(|r| r.parameter == name)
            .and_then(|r| r.elasticity)
            .unwrap_or_else(|| panic!("no elasticity for {name}"))
    }

    #[test]
    fn springs_dominated_point_has_unit_elasticity_in_dsp() {
        // At 1024 kbps under the Fig. 3b goal the springs dictate:
        // B = L*T*rs/Dsp, so d(ln B)/d(ln Dsp) = -1 exactly.
        let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let rows = buffer_sensitivity(&model, &DesignGoal::fig3b(), 0.05);
        let e = elasticity_of(&rows, "spring duty cycles");
        assert!((e + 1.0).abs() < 0.02, "elasticity {e}");
        // ...and the idle power is not binding.
        let e_idle = elasticity_of(&rows, "idle power");
        assert!(e_idle.abs() < 0.05, "idle elasticity {e_idle}");
    }

    #[test]
    fn energy_dominated_point_responds_to_power_not_springs() {
        // Fig. 3a at ~700 kbps: energy dictates. More idle power makes the
        // always-on baseline worse, making the saving goal easier: the
        // buffer shrinks (negative elasticity). The springs are slack.
        let model = SystemModel::paper_default(BitRate::from_kbps(700.0));
        let rows = buffer_sensitivity(&model, &DesignGoal::fig3a(), 0.05);
        assert!(elasticity_of(&rows, "idle power") < -0.3);
        assert!(elasticity_of(&rows, "spring duty cycles").abs() < 0.05);
    }

    #[test]
    fn capacity_dominated_point_is_insensitive_to_everything_swept() {
        // At 64 kbps under Fig. 3b the capacity (a pure format property)
        // dictates; none of the swept device/workload parameters moves it.
        let model = SystemModel::paper_default(BitRate::from_kbps(64.0));
        let rows = buffer_sensitivity(&model, &DesignGoal::fig3b(), 0.05);
        for row in &rows {
            if let Some(e) = row.elasticity {
                assert!(e.abs() < 0.05, "{}: elasticity {e}", row.parameter);
            }
        }
    }

    #[test]
    fn infeasible_perturbations_are_reported_as_none() {
        // Right at the E = 80% edge, nudging the media rate down makes the
        // goal infeasible; the elasticity collapses to None (a cliff).
        let model = SystemModel::paper_default(BitRate::from_kbps(1120.0));
        let rows = buffer_sensitivity(&model, &DesignGoal::fig3a(), 0.10);
        let rate_row = rows.iter().find(|r| r.parameter == "media rate").unwrap();
        assert!(rate_row.elasticity.is_none(), "{rate_row:?}");
    }

    #[test]
    #[should_panic(expected = "relative step")]
    fn excessive_step_panics() {
        let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let _ = buffer_sensitivity(&model, &DesignGoal::fig3b(), 0.9);
    }
}
