//! Text rendering of experiment data: CSV rows and ASCII charts.
//!
//! The bench harness uses these to print figure-shaped output directly in
//! the terminal (log axes, multiple series) and to dump CSV for external
//! plotting.

use std::fmt::Write as _;

/// An axis description for [`AsciiChart`].
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis label, e.g. `"Buffer capacity [kB]"`.
    pub label: String,
    /// Render the axis logarithmically (base 10).
    pub log: bool,
}

impl Axis {
    /// A linear axis.
    #[must_use]
    pub fn linear(label: impl Into<String>) -> Self {
        Axis {
            label: label.into(),
            log: false,
        }
    }

    /// A logarithmic axis.
    #[must_use]
    pub fn log(label: impl Into<String>) -> Self {
        Axis {
            label: label.into(),
            log: true,
        }
    }

    fn transform(&self, v: f64) -> Option<f64> {
        if self.log {
            (v > 0.0).then(|| v.log10())
        } else {
            Some(v)
        }
    }
}

/// A named data series for [`AsciiChart`].
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
    /// The glyph used to draw the series.
    pub glyph: char,
}

impl Series {
    /// Creates a series with the given glyph.
    #[must_use]
    pub fn new(name: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            glyph,
        }
    }
}

/// A terminal chart: a fixed-size grid onto which series are scattered.
#[derive(Debug, Clone, PartialEq)]
pub struct AsciiChart {
    /// Chart title.
    pub title: String,
    /// Horizontal axis.
    pub x: Axis,
    /// Vertical axis.
    pub y: Axis,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Grid width in characters.
    pub width: usize,
    /// Grid height in characters.
    pub height: usize,
}

impl AsciiChart {
    /// Creates a chart with the default 64×20 grid.
    #[must_use]
    pub fn new(title: impl Into<String>, x: Axis, y: Axis, series: Vec<Series>) -> Self {
        AsciiChart {
            title: title.into(),
            x,
            y,
            series,
            width: 64,
            height: 20,
        }
    }
}

/// Renders the chart to a multi-line string.
///
/// Points with non-positive coordinates on a log axis are dropped. Returns
/// a note instead of a grid if no point survives.
#[must_use]
pub fn render_ascii_chart(chart: &AsciiChart) -> String {
    let mut pts: Vec<(usize, f64, f64)> = Vec::new();
    for (idx, s) in chart.series.iter().enumerate() {
        for &(x, y) in &s.points {
            if let (Some(tx), Some(ty)) = (chart.x.transform(x), chart.y.transform(y)) {
                if tx.is_finite() && ty.is_finite() {
                    pts.push((idx, tx, ty));
                }
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", chart.title);
    if pts.is_empty() {
        let _ = writeln!(out, "(no drawable points)");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let w = chart.width;
    let h = chart.height;
    let mut grid = vec![vec![' '; w]; h];
    for &(idx, x, y) in &pts {
        let cx = (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
        let cy = (((y - y_min) / (y_max - y_min)) * (h - 1) as f64).round() as usize;
        let row = h - 1 - cy.min(h - 1);
        let col = cx.min(w - 1);
        grid[row][col] = chart.series[idx].glyph;
    }

    let back = |axis: &Axis, v: f64| -> f64 {
        if axis.log {
            10f64.powf(v)
        } else {
            v
        }
    };
    let _ = writeln!(
        out,
        "{} in [{:.3}, {:.3}]{}",
        chart.y.label,
        back(&chart.y, y_min),
        back(&chart.y, y_max),
        if chart.y.log { " (log)" } else { "" }
    );
    for row in &grid {
        let _ = writeln!(out, "|{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{} in [{:.3}, {:.3}]{}",
        chart.x.label,
        back(&chart.x, x_min),
        back(&chart.x, x_max),
        if chart.x.log { " (log)" } else { "" }
    );
    for s in &chart.series {
        let _ = writeln!(out, "  {} {}", s.glyph, s.name);
    }
    out
}

/// Renders rows of pre-formatted cells as CSV (quoting cells that need it).
#[must_use]
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_chart() -> AsciiChart {
        AsciiChart::new(
            "demo",
            Axis::log("Streaming bit rate [kbps]"),
            Axis::log("Buffer capacity [kB]"),
            vec![
                Series::new(
                    "required",
                    '*',
                    vec![(32.0, 1.0), (1024.0, 90.0), (4096.0, 400.0)],
                ),
                Series::new("energy", 'o', vec![(32.0, 0.1), (1024.0, 10.0)]),
            ],
        )
    }

    #[test]
    fn chart_contains_title_axes_and_legend() {
        let text = render_ascii_chart(&demo_chart());
        assert!(text.contains("== demo =="));
        assert!(text.contains("Streaming bit rate"));
        assert!(text.contains("* required"));
        assert!(text.contains("o energy"));
        assert!(text.contains('*'));
    }

    #[test]
    fn log_axis_drops_non_positive_points() {
        let chart = AsciiChart::new(
            "empty",
            Axis::log("x"),
            Axis::log("y"),
            vec![Series::new("s", '*', vec![(0.0, 1.0), (-1.0, 2.0)])],
        );
        assert!(render_ascii_chart(&chart).contains("no drawable points"));
    }

    #[test]
    fn chart_handles_single_point() {
        let chart = AsciiChart::new(
            "one",
            Axis::linear("x"),
            Axis::linear("y"),
            vec![Series::new("s", '*', vec![(1.0, 1.0)])],
        );
        let text = render_ascii_chart(&chart);
        assert!(text.contains('*'));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let csv = to_csv(&["a", "b"], &[vec!["1,5".to_owned(), "plain".to_owned()]]);
        assert_eq!(csv, "a,b\n\"1,5\",plain\n");
    }

    #[test]
    fn csv_escapes_quotes() {
        let csv = to_csv(&["x"], &[vec!["he said \"hi\"".to_owned()]]);
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }
}
