//! Capacity as a function of buffer size: §III-B with the `B ≥ Su` coupling.

use std::fmt;

use memstream_media::{min_user_bits_for_utilization, FormatError, SectorFormat};
use memstream_units::{DataSize, Ratio};

use crate::error::ModelError;
use crate::goal::Requirement;

/// The capacity leg of the trade-off: with the buffer flushed one sector at
/// a time (`Su = B`, §IV-C), the buffer size *is* the formatted sector's
/// user payload, so utilisation becomes a function of `B`.
///
/// ```
/// use memstream_core::CapacityModel;
/// use memstream_units::{DataSize, Ratio};
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let model = CapacityModel::paper_default();
/// // A 20 KiB buffer already formats at > 87%:
/// let u = model.utilization(DataSize::from_kibibytes(20.0));
/// assert!(u.percent() > 87.0);
/// // ...but 88% needs more:
/// let b = model.min_buffer_for_utilization(Ratio::from_percent(88.0))?;
/// assert!(b > DataSize::from_kibibytes(20.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityModel {
    format: SectorFormat,
    raw_capacity: DataSize,
}

impl CapacityModel {
    /// The paper's format on the Table I device (120 GB raw).
    #[must_use]
    pub fn paper_default() -> Self {
        CapacityModel {
            format: SectorFormat::paper_default(),
            raw_capacity: DataSize::from_gigabytes(120.0),
        }
    }

    /// Creates a capacity model from a format and the device's raw capacity.
    #[must_use]
    pub fn new(format: SectorFormat, raw_capacity: DataSize) -> Self {
        CapacityModel {
            format,
            raw_capacity,
        }
    }

    /// The sector format in force.
    #[must_use]
    pub fn format(&self) -> &SectorFormat {
        &self.format
    }

    /// The device's raw capacity.
    #[must_use]
    pub fn raw_capacity(&self) -> DataSize {
        self.raw_capacity
    }

    /// Utilisation `u(B)` with the buffer-sized sector (`Su = B`, Eq. (4)).
    #[must_use]
    pub fn utilization(&self, buffer: DataSize) -> Ratio {
        self.format.utilization(buffer)
    }

    /// The formatted sector size `S` for a buffer-sized sector (Eq. (3)).
    #[must_use]
    pub fn sector_size(&self, buffer: DataSize) -> DataSize {
        self.format.layout(buffer).sector_size()
    }

    /// Effective user capacity `C · u(B)`.
    #[must_use]
    pub fn effective_capacity(&self, buffer: DataSize) -> DataSize {
        self.format
            .layout(buffer)
            .effective_user_capacity(self.raw_capacity)
    }

    /// The utilisation supremum (8/9 for the paper's format).
    #[must_use]
    pub fn utilization_supremum(&self) -> Ratio {
        self.format.utilization_supremum()
    }

    /// The inverse of Eq. (4): the smallest buffer reaching utilisation
    /// `target` — the "C" curve of Fig. 3.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] if `target` is at or above
    /// the utilisation supremum.
    pub fn min_buffer_for_utilization(&self, target: Ratio) -> Result<DataSize, ModelError> {
        min_user_bits_for_utilization(&self.format, target)
            .map(DataSize::from_bit_count)
            .map_err(Self::as_model_error)
    }

    /// Like [`CapacityModel::min_buffer_for_utilization`], but never below
    /// `at_least`. Because `u(B)` is a sawtooth, a buffer another
    /// requirement enlarged can dip back below the target; this finds the
    /// next valid size at or above it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] if `target` is at or above
    /// the utilisation supremum.
    pub fn min_buffer_for_utilization_at_least(
        &self,
        target: Ratio,
        at_least: DataSize,
    ) -> Result<DataSize, ModelError> {
        memstream_media::min_user_bits_for_utilization_at_least(
            &self.format,
            target,
            at_least.bits().ceil() as u64,
        )
        .map(DataSize::from_bit_count)
        .map_err(Self::as_model_error)
    }

    fn as_model_error(err: FormatError) -> ModelError {
        match err {
            FormatError::UtilizationUnreachable {
                requested,
                supremum,
            } => ModelError::InfeasibleGoal {
                requirement: Requirement::Capacity,
                reason: format!(
                    "requested utilisation {:.2}% exceeds the format supremum {:.2}%",
                    requested * 100.0,
                    supremum * 100.0
                ),
            },
            other => ModelError::InfeasibleGoal {
                requirement: Requirement::Capacity,
                reason: other.to_string(),
            },
        }
    }
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel::paper_default()
    }
}

impl fmt::Display for CapacityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capacity model: {} on {} raw",
            self.format, self.raw_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_effective_capacity_tops_near_106_gb() {
        let m = CapacityModel::paper_default();
        let eff = m.effective_capacity(DataSize::from_kibibytes(512.0));
        assert!(
            (105.0..107.0).contains(&eff.gigabytes()),
            "got {} GB",
            eff.gigabytes()
        );
    }

    #[test]
    fn inverse_is_consistent_with_forward() {
        let m = CapacityModel::paper_default();
        for pct in [50.0, 70.0, 85.0, 88.0] {
            let t = Ratio::from_percent(pct);
            let b = m.min_buffer_for_utilization(t).unwrap();
            assert!(m.utilization(b) >= t);
        }
    }

    #[test]
    fn supremum_target_is_infeasible_with_named_requirement() {
        let m = CapacityModel::paper_default();
        let err = m
            .min_buffer_for_utilization(Ratio::from_percent(89.0))
            .unwrap_err();
        match err {
            ModelError::InfeasibleGoal { requirement, .. } => {
                assert_eq!(requirement, Requirement::Capacity);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn sector_size_exceeds_buffer() {
        // S > Su always: ECC + sync + padding.
        let m = CapacityModel::paper_default();
        let b = DataSize::from_kibibytes(8.0);
        assert!(m.sector_size(b) > b);
    }

    proptest! {
        #[test]
        fn effective_capacity_below_raw(kib in 0.1..1000.0f64) {
            let m = CapacityModel::paper_default();
            let eff = m.effective_capacity(DataSize::from_kibibytes(kib));
            prop_assert!(eff < m.raw_capacity());
        }
    }
}
