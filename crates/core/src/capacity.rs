//! Capacity as a function of buffer size: §III-B with the `B ≥ Su` coupling.

use std::fmt;

use memstream_media::{min_user_bits_for_utilization, FormatError, SectorFormat};
use memstream_units::{DataSize, Ratio};

use crate::error::ModelError;
use crate::goal::Requirement;

/// How utilisation depends on the buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UtilizationLaw {
    /// The sector-format sawtooth of §III-B (`Su = B`).
    Format(SectorFormat),
    /// A buffer-independent constant (fixed over-provisioning, e.g. flash).
    Constant(Ratio),
}

/// The capacity leg of the trade-off: with the buffer flushed one sector at
/// a time (`Su = B`, §IV-C), the buffer size *is* the formatted sector's
/// user payload, so utilisation becomes a function of `B`.
///
/// Devices without a sector format (e.g. flash, whose translation-layer
/// reserve is fixed at manufacture time) use the constant-utilisation law
/// of [`CapacityModel::constant`] instead.
///
/// ```
/// use memstream_core::CapacityModel;
/// use memstream_units::{DataSize, Ratio};
///
/// # fn main() -> Result<(), memstream_core::ModelError> {
/// let model = CapacityModel::paper_default();
/// // A 20 KiB buffer already formats at > 87%:
/// let u = model.utilization(DataSize::from_kibibytes(20.0));
/// assert!(u.percent() > 87.0);
/// // ...but 88% needs more:
/// let b = model.min_buffer_for_utilization(Ratio::from_percent(88.0))?;
/// assert!(b > DataSize::from_kibibytes(20.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityModel {
    law: UtilizationLaw,
    raw_capacity: DataSize,
}

impl CapacityModel {
    /// The paper's format on the Table I device (120 GB raw).
    #[must_use]
    pub fn paper_default() -> Self {
        CapacityModel::new(
            SectorFormat::paper_default(),
            DataSize::from_gigabytes(120.0),
        )
    }

    /// Creates a capacity model from a format and the device's raw capacity.
    #[must_use]
    pub fn new(format: SectorFormat, raw_capacity: DataSize) -> Self {
        CapacityModel {
            law: UtilizationLaw::Format(format),
            raw_capacity,
        }
    }

    /// Creates a constant-utilisation model: `u(B) = utilization` for every
    /// buffer size.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    #[must_use]
    pub fn constant(utilization: Ratio, raw_capacity: DataSize) -> Self {
        let f = utilization.fraction();
        assert!(
            f > 0.0 && f <= 1.0,
            "constant utilisation must be in (0, 1]"
        );
        CapacityModel {
            law: UtilizationLaw::Constant(utilization),
            raw_capacity,
        }
    }

    /// The sector format in force, when utilisation follows one.
    #[must_use]
    pub fn format(&self) -> Option<&SectorFormat> {
        match &self.law {
            UtilizationLaw::Format(format) => Some(format),
            UtilizationLaw::Constant(_) => None,
        }
    }

    /// The device's raw capacity.
    #[must_use]
    pub fn raw_capacity(&self) -> DataSize {
        self.raw_capacity
    }

    /// Utilisation `u(B)` with the buffer-sized sector (`Su = B`, Eq. (4)),
    /// or the fixed constant.
    #[must_use]
    pub fn utilization(&self, buffer: DataSize) -> Ratio {
        match &self.law {
            UtilizationLaw::Format(format) => format.utilization(buffer),
            UtilizationLaw::Constant(u) => *u,
        }
    }

    /// The formatted sector size `S` for a buffer-sized sector (Eq. (3)).
    /// Under the constant law the medium carries no per-sector overhead,
    /// so `S = Su = B`.
    #[must_use]
    pub fn sector_size(&self, buffer: DataSize) -> DataSize {
        match &self.law {
            UtilizationLaw::Format(format) => format.layout(buffer).sector_size(),
            UtilizationLaw::Constant(_) => buffer,
        }
    }

    /// Effective user capacity `C · u(B)`.
    #[must_use]
    pub fn effective_capacity(&self, buffer: DataSize) -> DataSize {
        match &self.law {
            UtilizationLaw::Format(format) => format
                .layout(buffer)
                .effective_user_capacity(self.raw_capacity),
            UtilizationLaw::Constant(u) => self.raw_capacity * u.fraction(),
        }
    }

    /// The utilisation supremum (8/9 for the paper's format; the constant
    /// itself under the constant law).
    #[must_use]
    pub fn utilization_supremum(&self) -> Ratio {
        match &self.law {
            UtilizationLaw::Format(format) => format.utilization_supremum(),
            UtilizationLaw::Constant(u) => *u,
        }
    }

    /// The inverse of Eq. (4): the smallest buffer reaching utilisation
    /// `target` — the "C" curve of Fig. 3. Under the constant law the
    /// answer is zero when the constant reaches the target (no buffer can
    /// change utilisation).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] if `target` is at or above
    /// the utilisation supremum (format law) or above the constant.
    pub fn min_buffer_for_utilization(&self, target: Ratio) -> Result<DataSize, ModelError> {
        match &self.law {
            UtilizationLaw::Format(format) => min_user_bits_for_utilization(format, target)
                .map(DataSize::from_bit_count)
                .map_err(Self::as_model_error),
            UtilizationLaw::Constant(u) => {
                self.check_constant_reaches(*u, target)?;
                Ok(DataSize::ZERO)
            }
        }
    }

    /// Like [`CapacityModel::min_buffer_for_utilization`], but never below
    /// `at_least`. Because `u(B)` is a sawtooth, a buffer another
    /// requirement enlarged can dip back below the target; this finds the
    /// next valid size at or above it. The constant law has no sawtooth,
    /// so the answer is `at_least` itself.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InfeasibleGoal`] if `target` is at or above
    /// the utilisation supremum (format law) or above the constant.
    pub fn min_buffer_for_utilization_at_least(
        &self,
        target: Ratio,
        at_least: DataSize,
    ) -> Result<DataSize, ModelError> {
        match &self.law {
            UtilizationLaw::Format(format) => {
                memstream_media::min_user_bits_for_utilization_at_least(
                    format,
                    target,
                    at_least.bits().ceil() as u64,
                )
                .map(DataSize::from_bit_count)
                .map_err(Self::as_model_error)
            }
            UtilizationLaw::Constant(u) => {
                self.check_constant_reaches(*u, target)?;
                Ok(at_least)
            }
        }
    }

    fn check_constant_reaches(&self, constant: Ratio, target: Ratio) -> Result<(), ModelError> {
        if target.fraction() > constant.fraction() {
            return Err(ModelError::InfeasibleGoal {
                requirement: Requirement::Capacity,
                reason: format!(
                    "requested utilisation {:.2}% exceeds the fixed media utilisation {:.2}%",
                    target.fraction() * 100.0,
                    constant.fraction() * 100.0
                ),
            });
        }
        Ok(())
    }

    fn as_model_error(err: FormatError) -> ModelError {
        match err {
            FormatError::UtilizationUnreachable {
                requested,
                supremum,
            } => ModelError::InfeasibleGoal {
                requirement: Requirement::Capacity,
                reason: format!(
                    "requested utilisation {:.2}% exceeds the format supremum {:.2}%",
                    requested * 100.0,
                    supremum * 100.0
                ),
            },
            other => ModelError::InfeasibleGoal {
                requirement: Requirement::Capacity,
                reason: other.to_string(),
            },
        }
    }
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel::paper_default()
    }
}

impl fmt::Display for CapacityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.law {
            UtilizationLaw::Format(format) => {
                write!(f, "capacity model: {} on {} raw", format, self.raw_capacity)
            }
            UtilizationLaw::Constant(u) => {
                write!(
                    f,
                    "capacity model: fixed {} on {} raw",
                    u, self.raw_capacity
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_effective_capacity_tops_near_106_gb() {
        let m = CapacityModel::paper_default();
        let eff = m.effective_capacity(DataSize::from_kibibytes(512.0));
        assert!(
            (105.0..107.0).contains(&eff.gigabytes()),
            "got {} GB",
            eff.gigabytes()
        );
    }

    #[test]
    fn inverse_is_consistent_with_forward() {
        let m = CapacityModel::paper_default();
        for pct in [50.0, 70.0, 85.0, 88.0] {
            let t = Ratio::from_percent(pct);
            let b = m.min_buffer_for_utilization(t).unwrap();
            assert!(m.utilization(b) >= t);
        }
    }

    #[test]
    fn supremum_target_is_infeasible_with_named_requirement() {
        let m = CapacityModel::paper_default();
        let err = m
            .min_buffer_for_utilization(Ratio::from_percent(89.0))
            .unwrap_err();
        match err {
            ModelError::InfeasibleGoal { requirement, .. } => {
                assert_eq!(requirement, Requirement::Capacity);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn sector_size_exceeds_buffer() {
        // S > Su always: ECC + sync + padding.
        let m = CapacityModel::paper_default();
        let b = DataSize::from_kibibytes(8.0);
        assert!(m.sector_size(b) > b);
    }

    #[test]
    fn constant_law_is_buffer_independent() {
        let m = CapacityModel::constant(Ratio::from_percent(93.0), DataSize::from_gigabytes(64.0));
        let u1 = m.utilization(DataSize::from_kibibytes(1.0));
        let u2 = m.utilization(DataSize::from_mebibytes(10.0));
        assert_eq!(u1, u2);
        assert_eq!(m.utilization_supremum(), u1);
        assert!(m.format().is_none());
        // Reaching 88% costs nothing; exceeding 93% is infeasible.
        assert_eq!(
            m.min_buffer_for_utilization(Ratio::from_percent(88.0))
                .unwrap(),
            DataSize::ZERO
        );
        let floor = DataSize::from_kibibytes(12.0);
        assert_eq!(
            m.min_buffer_for_utilization_at_least(Ratio::from_percent(88.0), floor)
                .unwrap(),
            floor
        );
        let err = m
            .min_buffer_for_utilization(Ratio::from_percent(95.0))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::InfeasibleGoal {
                requirement: Requirement::Capacity,
                ..
            }
        ));
    }

    proptest! {
        #[test]
        fn effective_capacity_below_raw(kib in 0.1..1000.0f64) {
            let m = CapacityModel::paper_default();
            let eff = m.effective_capacity(DataSize::from_kibibytes(kib));
            prop_assert!(eff < m.raw_capacity());
        }
    }
}
