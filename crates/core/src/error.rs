//! Model errors, including the "infeasible design point" answer of §IV-C.

use std::error::Error;
use std::fmt;

use crate::goal::Requirement;

/// Error returned by the buffering model and its inverse functions.
///
/// §IV-C: "The answer could either be a quantitative result of the buffer
/// size, or a statement of infeasible design point." The
/// [`ModelError::InfeasibleGoal`] variant is that statement, carrying which
/// requirement cannot be met and why.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The stream (plus best-effort reservation) exceeds the device's
    /// sustainable media bandwidth: no refill cycle can keep up.
    RateExceedsBandwidth {
        /// Requested stream rate in bits per second.
        stream_bps: f64,
        /// Bandwidth available for refills after the best-effort
        /// reservation, in bits per second.
        available_bps: f64,
    },
    /// The buffer is too small for the device to complete a single
    /// seek + refill + shutdown cycle without the decoder underrunning.
    BufferBelowCycleMinimum {
        /// Requested buffer in bits.
        buffer_bits: f64,
        /// The smallest workable buffer in bits.
        minimum_bits: f64,
    },
    /// A requirement of the design goal cannot be met by any buffer size.
    InfeasibleGoal {
        /// Which requirement failed.
        requirement: Requirement,
        /// Human-readable explanation with the limiting value.
        reason: String,
    },
    /// The goal named no requirement at all.
    EmptyGoal,
    /// A device lacks a capability an analysis needs (e.g. asking the full
    /// model pipeline to plan a device with no wear model).
    MissingCapability {
        /// The missing capability (`"energy"`, `"wear"`, `"utilization"`,
        /// `"sim"`).
        capability: &'static str,
    },
    /// A device exposes a capability with an out-of-range payload (e.g. a
    /// constant utilisation of 0 or above 1). Registry devices are
    /// third-party code; malformed payloads surface as errors rather than
    /// panics inside evaluation workers.
    InvalidCapability {
        /// The offending capability.
        capability: &'static str,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::RateExceedsBandwidth {
                stream_bps,
                available_bps,
            } => write!(
                f,
                "stream rate {:.0} b/s exceeds the {:.0} b/s available for refills",
                stream_bps, available_bps
            ),
            ModelError::BufferBelowCycleMinimum {
                buffer_bits,
                minimum_bits,
            } => write!(
                f,
                "buffer of {:.0} bits is below the {:.0}-bit minimum for a full refill cycle",
                buffer_bits, minimum_bits
            ),
            ModelError::InfeasibleGoal {
                requirement,
                reason,
            } => write!(f, "design goal infeasible: {requirement} — {reason}"),
            ModelError::EmptyGoal => write!(f, "design goal names no requirement"),
            ModelError::MissingCapability { capability } => {
                write!(f, "device does not expose the `{capability}` capability")
            }
            ModelError::InvalidCapability { capability, reason } => {
                write!(f, "device `{capability}` capability is invalid: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_goal_names_requirement() {
        let e = ModelError::InfeasibleGoal {
            requirement: Requirement::Energy,
            reason: "asymptotic saving is 74.2% < 80%".to_owned(),
        };
        let text = e.to_string();
        assert!(text.contains("energy"));
        assert!(text.contains("74.2%"));
    }

    #[test]
    fn bandwidth_error_reports_both_rates() {
        let e = ModelError::RateExceedsBandwidth {
            stream_bps: 2e8,
            available_bps: 9.7e7,
        };
        assert!(e.to_string().contains("200000000"));
    }
}
