//! The saving-versus-buffer trade-off frontier.
//!
//! The paper closes §IV-C with a design argument: between an 80 % and a
//! 70 % energy saving "the system-wide impact ... might be negligible. On
//! the contrary, the buffer size differs three orders of magnitude, so
//! that 70 % might well be preferable." This module computes that
//! trade-off curve — minimum buffer as a function of the saving target —
//! and locates its *knee*, the point past which each extra percent of
//! saving starts costing disproportionate buffer.

use memstream_units::{DataSize, Ratio};

use crate::error::ModelError;
use crate::system::SystemModel;

/// One point of the saving-versus-buffer frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The energy-saving target.
    pub saving: Ratio,
    /// The minimum buffer achieving it, or the infeasibility statement.
    pub buffer: Result<DataSize, ModelError>,
}

/// The frontier: minimum buffer for each saving target, plus its knee.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingFrontier {
    /// Frontier points in ascending saving order.
    pub points: Vec<FrontierPoint>,
    /// The knee: the feasible point after which the marginal buffer cost
    /// per percent of saving is largest (`None` if fewer than three
    /// points are feasible).
    pub knee: Option<Ratio>,
}

impl SavingFrontier {
    /// The highest feasible saving on the frontier.
    #[must_use]
    pub fn max_feasible_saving(&self) -> Option<Ratio> {
        self.points
            .iter()
            .rev()
            .find(|p| p.buffer.is_ok())
            .map(|p| p.saving)
    }

    /// The buffer at a specific saving target, if that point was sampled
    /// and feasible.
    #[must_use]
    pub fn buffer_at(&self, saving: Ratio) -> Option<DataSize> {
        self.points
            .iter()
            .find(|p| p.saving == saving)
            .and_then(|p| p.buffer.as_ref().ok())
            .copied()
    }
}

/// Computes the frontier over the given saving targets (sorted
/// internally).
///
/// The knee is located as the feasible point maximising the second
/// difference of `ln B` over the saving grid — the discrete analogue of
/// "where the log-cost curve bends hardest".
///
/// # Panics
///
/// Panics if `savings` is empty.
#[must_use]
pub fn saving_frontier(
    model: &SystemModel,
    savings: impl IntoIterator<Item = Ratio>,
) -> SavingFrontier {
    let mut targets: Vec<Ratio> = savings.into_iter().collect();
    assert!(!targets.is_empty(), "need at least one saving target");
    targets.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    targets.dedup();

    let energy = model.energy_model();
    let points: Vec<FrontierPoint> = targets
        .iter()
        .map(|&saving| FrontierPoint {
            saving,
            buffer: energy.min_buffer_for_saving(saving),
        })
        .collect();

    // Knee: largest positive curvature of ln B over consecutive feasible
    // triples.
    let feasible: Vec<(Ratio, f64)> = points
        .iter()
        .filter_map(|p| p.buffer.as_ref().ok().map(|b| (p.saving, b.bits().ln())))
        .collect();
    let knee = feasible
        .windows(3)
        .map(|w| {
            let curvature = (w[2].1 - w[1].1) - (w[1].1 - w[0].1);
            (w[1].0, curvature)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite curvature"))
        .map(|(saving, _)| saving);

    SavingFrontier { points, knee }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_units::BitRate;

    fn grid(from: f64, to: f64, n: usize) -> Vec<Ratio> {
        (0..n)
            .map(|i| Ratio::from_percent(from + (to - from) * i as f64 / (n - 1) as f64))
            .collect()
    }

    #[test]
    fn frontier_is_monotone_where_feasible() {
        let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let frontier = saving_frontier(&model, grid(10.0, 80.0, 15));
        let buffers: Vec<f64> = frontier
            .points
            .iter()
            .filter_map(|p| p.buffer.as_ref().ok().map(|b| b.bits()))
            .collect();
        assert!(buffers.len() >= 10);
        for pair in buffers.windows(2) {
            assert!(pair[1] >= pair[0], "frontier must be non-decreasing");
        }
    }

    #[test]
    fn infeasible_targets_appear_past_the_max_saving() {
        let model = SystemModel::paper_default(BitRate::from_kbps(2048.0));
        let frontier = saving_frontier(&model, grid(50.0, 95.0, 10));
        let max = frontier.max_feasible_saving().unwrap();
        assert!(max.percent() < 95.0);
        for p in &frontier.points {
            if p.saving > max {
                assert!(p.buffer.is_err());
            }
        }
    }

    #[test]
    fn the_paper_closing_argument_at_the_80_percent_edge() {
        // Near the Fig. 3a edge, the last ten points of saving cost orders
        // of magnitude of buffer: the knee sits well below the maximum.
        let model = SystemModel::paper_default(BitRate::from_kbps(1100.0));
        let frontier = saving_frontier(&model, grid(40.0, 80.0, 21));
        let knee = frontier.knee.unwrap();
        let max = frontier.max_feasible_saving().unwrap();
        assert!(knee < max, "knee {knee} should precede max {max}");
        // The last ten points of saving (70% -> 80%) cost well over an
        // order of magnitude of buffer — the paper's closing argument.
        let at_70 = frontier.buffer_at(Ratio::from_percent(70.0)).unwrap();
        let at_max = frontier.buffer_at(max).unwrap();
        assert!(at_max / at_70 > 10.0, "ratio {}", at_max / at_70);
    }

    #[test]
    fn buffer_at_unknown_target_is_none() {
        let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let frontier = saving_frontier(&model, vec![Ratio::from_percent(50.0)]);
        assert!(frontier.buffer_at(Ratio::from_percent(51.0)).is_none());
        assert!(frontier.buffer_at(Ratio::from_percent(50.0)).is_some());
        assert!(frontier.knee.is_none(), "one point has no knee");
    }

    #[test]
    #[should_panic(expected = "at least one saving target")]
    fn empty_grid_panics() {
        let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
        let _ = saving_frontier(&model, vec![]);
    }
}
