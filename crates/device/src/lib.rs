//! Device models for the `memstream` workspace.
//!
//! Three devices appear in Khatib & Abelmann (DATE 2011):
//!
//! 1. A **probe-based MEMS storage device** modelled on the IBM "millipede"
//!    prototype (Lantz et al. 2007) — parameters in Table I, reproduced by
//!    [`MemsDevice::table1`]. This is the subject of the study.
//! 2. A **1.8-inch disk drive**, the comparison point for the "three orders
//!    of magnitude" break-even-buffer contrast — [`DiskDevice`].
//! 3. A **DRAM streaming buffer** whose retention/access energy the paper
//!    includes and finds negligible — [`DramModel`], patterned after the
//!    Micron TN-46-03 DDR power calculator.
//!
//! The first two implement [`MechanicalDevice`], the interface the analytic
//! energy model and the discrete-event simulator are generic over: a medium
//! that moves (and therefore pays a seek + shutdown *overhead* around every
//! burst) and that exposes distinct power states.
//!
//! ```
//! use memstream_device::{MechanicalDevice, MemsDevice, PowerState};
//! use memstream_units::BitRate;
//!
//! let mems = MemsDevice::table1();
//! assert_eq!(mems.media_rate(), BitRate::from_mbps(102.4));
//! assert_eq!(mems.power(PowerState::Standby).milliwatts(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod dram;
mod error;
mod mems;
mod power;

pub use disk::{DiskDevice, DiskDeviceBuilder};
pub use dram::{DramEnergyBreakdown, DramModel};
pub use error::DeviceError;
pub use mems::{MemsDevice, MemsDeviceBuilder, ProbeArray};
pub use power::{MechanicalDevice, PowerState};

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_units::{Duration, Power};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn devices_are_send_sync() {
        assert_send_sync::<MemsDevice>();
        assert_send_sync::<DiskDevice>();
        assert_send_sync::<DramModel>();
        assert_send_sync::<PowerState>();
        assert_send_sync::<DeviceError>();
    }

    #[test]
    fn trait_objects_are_usable() {
        // MechanicalDevice must stay object-safe: the bench harness stores
        // heterogeneous device lists behind `&dyn MechanicalDevice`.
        let mems = MemsDevice::table1();
        let disk = DiskDevice::calibrated_1p8_inch();
        let devices: Vec<&dyn MechanicalDevice> = vec![&mems, &disk];
        for d in devices {
            assert!(d.overhead_time() > Duration::ZERO);
            assert!(d.power(PowerState::Idle) > Power::ZERO);
            assert!(d.media_rate().bits_per_second() > 0.0);
        }
    }
}
