//! Device models for the `memstream` workspace.
//!
//! Three storage devices are modelled, plus the DRAM buffer in front of
//! them:
//!
//! 1. A **probe-based MEMS storage device** modelled on the IBM "millipede"
//!    prototype (Lantz et al. 2007) — parameters in Table I of Khatib &
//!    Abelmann (DATE 2011), reproduced by [`MemsDevice::table1`]. This is
//!    the subject of the study.
//! 2. A **1.8-inch disk drive**, the comparison point for the "three orders
//!    of magnitude" break-even-buffer contrast — [`DiskDevice`].
//! 3. A **managed NAND flash part** with erase-block wear —
//!    [`FlashDevice`], the first device added through the open capability
//!    seam rather than the paper's closed pair.
//! 4. A **DRAM streaming buffer** whose retention/access energy the paper
//!    includes and finds negligible — [`DramModel`], patterned after the
//!    Micron TN-46-03 DDR power calculator.
//!
//! The device-model seam is [`StorageDevice`] plus opt-in capabilities:
//! [`EnergyModelled`] (the refill-cycle power model the analytic stack and
//! the simulator are generic over), [`WearModelled`] (wear channels the
//! lifetime model folds into years) and [`SimBacked`] (the discrete-event
//! simulator can replay the device). See [`capability`] for the contract.
//!
//! ```
//! use memstream_device::{EnergyModelled, MemsDevice, PowerState};
//! use memstream_units::BitRate;
//!
//! let mems = MemsDevice::table1();
//! assert_eq!(mems.media_rate(), BitRate::from_mbps(102.4));
//! assert_eq!(mems.power(PowerState::Standby).milliwatts(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capability;
mod disk;
mod dram;
mod error;
mod flash;
mod mems;
mod power;

pub use capability::{
    EnergyOnly, SimBacked, StorageDevice, UtilizationSpec, WearChannel, WearModelled, WearSpec,
};
pub use disk::{DiskDevice, DiskDeviceBuilder};
pub use dram::{DramEnergyBreakdown, DramModel};
pub use error::DeviceError;
pub use flash::{FlashDevice, FlashDeviceBuilder};
pub use mems::{MemsDevice, MemsDeviceBuilder, ProbeArray};
pub use power::{EnergyModelled, MechanicalDevice, PowerState};

#[cfg(test)]
mod tests {
    use super::*;
    use memstream_units::{Duration, Power};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn devices_are_send_sync() {
        assert_send_sync::<MemsDevice>();
        assert_send_sync::<DiskDevice>();
        assert_send_sync::<FlashDevice>();
        assert_send_sync::<DramModel>();
        assert_send_sync::<PowerState>();
        assert_send_sync::<DeviceError>();
        assert_send_sync::<Box<dyn StorageDevice>>();
    }

    #[test]
    fn trait_objects_are_usable() {
        // EnergyModelled must stay object-safe: the bench harness stores
        // heterogeneous device lists behind `&dyn EnergyModelled`.
        let mems = MemsDevice::table1();
        let disk = DiskDevice::calibrated_1p8_inch();
        let flash = FlashDevice::mobile_mlc();
        let devices: Vec<&dyn EnergyModelled> = vec![&mems, &disk, &flash];
        for d in devices {
            assert!(d.overhead_time() > Duration::ZERO);
            assert!(d.power(PowerState::Idle) > Power::ZERO);
            assert!(d.media_rate().bits_per_second() > 0.0);
        }
    }

    #[test]
    fn mechanical_marker_covers_the_moving_media() {
        fn assert_mechanical<T: MechanicalDevice>() {}
        assert_mechanical::<MemsDevice>();
        assert_mechanical::<DiskDevice>();
        // FlashDevice deliberately does not implement MechanicalDevice.
    }
}
