//! The open device-model seam: [`StorageDevice`] plus optional
//! capabilities.
//!
//! The paper's study hardcodes two devices (a MEMS store and a 1.8-inch
//! disk); its *result* — buffer dimensioning trades energy saving against
//! device lifetime — is device-generic. This module is the seam that makes
//! the rest of the workspace generic too: a device is a [`StorageDevice`]
//! that *opts into* capabilities:
//!
//! * [`EnergyModelled`] — the refill-cycle power model of Eq. (1) can
//!   price it;
//! * [`WearModelled`] — it exposes wear channels (spring duty cycles,
//!   probe write budgets, flash erase budgets) the lifetime model folds
//!   into Eqs. (5)–(6) and their generalisations;
//! * [`SimBacked`] — the discrete-event simulator can replay it.
//!
//! Adding a device to the workspace is now: implement these traits in one
//! file and register the device on a grid. No enum surgery anywhere.

use std::fmt;

use memstream_units::{DataSize, Duration};

use crate::power::EnergyModelled;

/// How the analytic stack should model capacity utilisation `u(B)` for a
/// device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtilizationSpec {
    /// `u(B)` follows the probe-striped sector format of §III-B: sync and
    /// ECC overheads amortise over buffer-sized sectors striped this wide.
    SectorFormat {
        /// The striping width `K` (simultaneously active probes).
        stripe_width: u32,
    },
    /// `u` is a buffer-independent constant — e.g. a flash part whose
    /// over-provisioning and translation-layer reserve are fixed at
    /// manufacture time.
    Constant {
        /// The fixed utilisation as a fraction in `(0, 1]`.
        fraction: f64,
    },
}

/// One wear mechanism of a device, in the units the lifetime model folds
/// into years.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WearChannel {
    /// A component rated for a fixed number of duty cycles, consumed one
    /// per refill (seek + shutdown) round trip: MEMS springs (Eq. (5)),
    /// disk head load/unload.
    DutyCycle {
        /// The duty-cycle rating `Dsp`.
        rating: f64,
    },
    /// A physical-write budget scaled by format utilisation: probe fatigue
    /// (Eq. (6)). `budget_bits = C · Dpb`; lifetime is
    /// `budget · u(B) / (w · T · rs)`.
    WriteBudget {
        /// The per-location write-cycle rating `Dpb` (for reporting).
        rating: f64,
        /// The total device write budget in bit-writes (`C · Dpb`).
        budget_bits: f64,
    },
    /// An erase-block program/erase budget with buffer-dependent write
    /// amplification: flash. Lifetime is
    /// `budget / (w · T · rs · waf(B))` with
    /// `waf(B) = waf_floor + block_bits / B` — small buffers force partial
    /// block programs and extra copy-back traffic, large buffers approach
    /// the floor.
    EraseBudget {
        /// Total bit-writes before the P/E budget is exhausted
        /// (`C · pe_cycles`).
        budget_bits: f64,
        /// Size of one erase block in bits.
        block_bits: f64,
        /// The write-amplification asymptote for large, aligned writes
        /// (≥ 1).
        waf_floor: f64,
    },
}

/// Capability: the device wears out in a way the lifetime model can fold
/// into years as a function of buffer size.
pub trait WearModelled: fmt::Debug {
    /// The device's wear channels, most binding first by convention. The
    /// lifetime model takes the minimum across channels.
    fn wear_channels(&self) -> Vec<WearChannel>;
}

/// What the simulator should account wear into — the data half of the
/// wear-sink seam (`memstream_sim` owns the accounting types; this spec
/// tells it which one to build).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WearSpec {
    /// Spring duty cycles + probe write budget (MEMS).
    ProbeFatigue {
        /// Striped probes sharing every write.
        active_probes: u32,
        /// Spring duty-cycle rating `Dsp`.
        spring_rating: f64,
        /// Total probe write budget in bit-writes (`C · Dpb`).
        probe_budget_bits: f64,
    },
    /// Erase blocks with a P/E-cycle budget and greedy wear-leveling
    /// (flash). The simulator inflates physical writes by the same
    /// `waf(B) = waf_floor + block_bits / B` the analytic
    /// [`WearChannel::EraseBudget`] charges, keeping the two wear models
    /// consistent.
    EraseBlocks {
        /// Number of erase blocks tracked by the leveler.
        blocks: u32,
        /// Size of one erase block in bits.
        block_bits: f64,
        /// Program/erase cycle rating per block.
        pe_cycles: f64,
        /// The write-amplification asymptote for large aligned writes.
        waf_floor: f64,
    },
}

/// Capability: the discrete-event simulator can replay this device.
pub trait SimBacked: EnergyModelled {
    /// Per-access I/O overhead charged to best-effort requests.
    fn io_overhead_time(&self) -> Duration;

    /// Striping width used to derive the simulated sector format.
    fn stripe_width(&self) -> u32;

    /// The wear sink the simulator should account into.
    fn wear_spec(&self) -> WearSpec;

    /// Boxed clone, so simulation configs can own heterogeneous devices.
    fn clone_sim(&self) -> Box<dyn SimBacked>;
}

impl Clone for Box<dyn SimBacked> {
    fn clone(&self) -> Self {
        self.clone_sim()
    }
}

impl<T: EnergyModelled + ?Sized> EnergyModelled for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn media_rate(&self) -> memstream_units::BitRate {
        (**self).media_rate()
    }
    fn power(&self, state: crate::PowerState) -> memstream_units::Power {
        (**self).power(state)
    }
    fn seek_time(&self) -> Duration {
        (**self).seek_time()
    }
    fn shutdown_time(&self) -> Duration {
        (**self).shutdown_time()
    }
}

impl SimBacked for Box<dyn SimBacked> {
    fn io_overhead_time(&self) -> Duration {
        (**self).io_overhead_time()
    }
    fn stripe_width(&self) -> u32 {
        (**self).stripe_width()
    }
    fn wear_spec(&self) -> WearSpec {
        (**self).wear_spec()
    }
    fn clone_sim(&self) -> Box<dyn SimBacked> {
        (**self).clone_sim()
    }
}

/// The super-trait every registered device implements: identity plus
/// capability discovery. Object-safe, so registries hold
/// `Vec<Box<dyn StorageDevice>>`.
///
/// Capability accessors default to `None`: a freshly written device
/// participates in exactly the analyses it opts into, and every consumer
/// (grid evaluation, sim validation) accounts explicitly for the
/// capabilities a device lacks instead of silently skipping it.
pub trait StorageDevice: fmt::Debug + Send + Sync {
    /// Device-family tag used in dedup keys and capability matrices
    /// (`"mems"`, `"disk"`, `"flash"`, ...).
    fn kind(&self) -> &'static str;

    /// A canonical content key: two devices with equal tokens model the
    /// same physics regardless of display names.
    fn dedup_token(&self) -> String;

    /// Raw media capacity.
    fn capacity(&self) -> DataSize;

    /// The energy capability, if the refill-cycle model applies.
    fn energy(&self) -> Option<&dyn EnergyModelled> {
        None
    }

    /// The wear capability, if the device has modelled wear channels.
    fn wear(&self) -> Option<&dyn WearModelled> {
        None
    }

    /// The simulation capability, if the discrete-event simulator can
    /// replay the device.
    fn sim(&self) -> Option<&dyn SimBacked> {
        None
    }

    /// How utilisation should be modelled, if the device supports the
    /// capacity leg of the trade-off at all.
    fn utilization(&self) -> Option<UtilizationSpec> {
        None
    }

    /// A concrete-type handle for monomorphized fast paths: devices that
    /// want to opt in (the registered mems/disk/flash types do) return
    /// `Some(self)`, letting consumers downcast and skip `&dyn` capability
    /// dispatch. The default `None` keeps wrapper devices (e.g.
    /// [`EnergyOnly`]) on the generic path; answers must be *identical*
    /// either way — this is purely a dispatch shortcut.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Boxed clone, for registries.
    fn clone_box(&self) -> Box<dyn StorageDevice>;
}

impl Clone for Box<dyn StorageDevice> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Restricts a device to its energy capability, masking wear, utilisation
/// and sim backing.
///
/// This is the capability-algebra way to freeze a device into the role the
/// paper's §III-A.1 break-even comparison gives the 1.8″ disk: priced by
/// the refill-cycle model, nothing else. The wrapper's dedup token is
/// distinct from the inner device's — an energy-only view and the fully
/// modelled device evaluate differently, so they must never share a cached
/// outcome.
///
/// ```
/// use memstream_device::{DiskDevice, EnergyOnly, StorageDevice};
///
/// let full = DiskDevice::calibrated_1p8_inch();
/// let masked = EnergyOnly::new(full.clone());
/// assert!(full.wear().is_some());
/// assert!(masked.wear().is_none() && masked.energy().is_some());
/// assert_ne!(full.dedup_token(), masked.dedup_token());
/// ```
#[derive(Debug, Clone)]
pub struct EnergyOnly<D> {
    inner: D,
}

impl<D: StorageDevice> EnergyOnly<D> {
    /// Wraps `inner`, hiding every capability but energy.
    pub fn new(inner: D) -> Self {
        EnergyOnly { inner }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: StorageDevice + Clone + 'static> StorageDevice for EnergyOnly<D> {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn dedup_token(&self) -> String {
        format!("energy-only:{}", self.inner.dedup_token())
    }

    fn capacity(&self) -> DataSize {
        self.inner.capacity()
    }

    fn energy(&self) -> Option<&dyn EnergyModelled> {
        self.inner.energy()
    }

    fn clone_box(&self) -> Box<dyn StorageDevice> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskDevice, FlashDevice, MemsDevice};

    fn capability_row(d: &dyn StorageDevice) -> (bool, bool, bool, bool) {
        (
            d.energy().is_some(),
            d.wear().is_some(),
            d.sim().is_some(),
            d.utilization().is_some(),
        )
    }

    #[test]
    fn capability_matrix_matches_readme() {
        let mems = MemsDevice::table1();
        let disk = DiskDevice::calibrated_1p8_inch();
        let flash = FlashDevice::mobile_mlc();
        assert_eq!(capability_row(&mems), (true, true, true, true));
        // The disk is full-pipeline on the analytic side (start-stop wear
        // plus a fixed LBA-format utilisation) but not sim-backed.
        assert_eq!(capability_row(&disk), (true, true, false, true));
        assert_eq!(capability_row(&flash), (true, true, true, true));
        // The paper-era energy-only role survives behind the mask.
        assert_eq!(
            capability_row(&EnergyOnly::new(disk)),
            (true, false, false, false)
        );
    }

    #[test]
    fn dedup_tokens_are_kind_prefixed_and_content_keyed() {
        let a = MemsDevice::table1();
        let b = MemsDevice::table1().with_probe_write_cycles(200.0);
        assert!(a.dedup_token().starts_with("mems:"));
        assert_ne!(a.dedup_token(), b.dedup_token());
        assert_eq!(a.dedup_token(), MemsDevice::table1().dedup_token());
        assert!(DiskDevice::calibrated_1p8_inch()
            .dedup_token()
            .starts_with("disk:"));
        assert!(FlashDevice::mobile_mlc()
            .dedup_token()
            .starts_with("flash:"));
    }

    #[test]
    fn boxed_registry_round_trips_capabilities() {
        let devices: Vec<Box<dyn StorageDevice>> = vec![
            Box::new(MemsDevice::table1()),
            Box::new(DiskDevice::calibrated_1p8_inch()),
            Box::new(FlashDevice::mobile_mlc()),
        ];
        let cloned = devices.clone();
        for (a, b) in devices.iter().zip(&cloned) {
            assert_eq!(a.dedup_token(), b.dedup_token());
            assert_eq!(a.kind(), b.kind());
        }
        // The disk carries analytic wear but no sim backing; the others
        // carry every capability.
        assert!(cloned[1].wear().is_some());
        assert!(cloned[1].sim().is_none());
        assert!(cloned[0].sim().is_some());
        assert!(cloned[2].sim().is_some());
    }

    #[test]
    fn mems_wear_channels_mirror_the_ratings() {
        let d = MemsDevice::table1();
        let channels = d.wear_channels();
        assert_eq!(channels.len(), 2);
        match channels[0] {
            WearChannel::DutyCycle { rating } => assert_eq!(rating, 1e8),
            ref other => panic!("expected duty-cycle channel, got {other:?}"),
        }
        match channels[1] {
            WearChannel::WriteBudget {
                rating,
                budget_bits,
            } => {
                assert_eq!(rating, 100.0);
                assert_eq!(budget_bits, d.capacity().bits() * 100.0);
            }
            ref other => panic!("expected write-budget channel, got {other:?}"),
        }
    }
}
