//! Device-construction errors.

use std::error::Error;
use std::fmt;

/// Error returned when a device description is physically inconsistent.
///
/// Builders validate their inputs on `build()`; each variant names the
/// violated constraint so configuration mistakes are diagnosable.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A required strictly-positive parameter was zero (or effectively zero).
    ZeroParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
    },
    /// The standby power must be the lowest power state for shutdown to
    /// ever save energy.
    StandbyNotLowest {
        /// Standby power in watts.
        standby_watts: f64,
        /// The state that undercut it, e.g. "idle".
        undercut_by: &'static str,
        /// That state's power in watts.
        other_watts: f64,
    },
    /// More probes were declared active than exist in the array.
    ActiveProbesExceedArray {
        /// Declared number of simultaneously active probes.
        active: u32,
        /// Total probes in the array.
        total: u32,
    },
    /// A ratio-like parameter fell outside `[0, 1]`.
    FractionOutOfRange {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::ZeroParameter { parameter } => {
                write!(
                    f,
                    "device parameter `{parameter}` must be strictly positive"
                )
            }
            DeviceError::StandbyNotLowest {
                standby_watts,
                undercut_by,
                other_watts,
            } => write!(
                f,
                "standby power ({standby_watts} W) must be the lowest state, \
                 but {undercut_by} draws {other_watts} W"
            ),
            DeviceError::ActiveProbesExceedArray { active, total } => write!(
                f,
                "active probe count {active} exceeds the {total} probes in the array"
            ),
            DeviceError::FractionOutOfRange { parameter, value } => {
                write!(
                    f,
                    "device parameter `{parameter}` must lie in [0, 1], got {value}"
                )
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parameter() {
        let e = DeviceError::ZeroParameter {
            parameter: "per_probe_rate",
        };
        assert!(e.to_string().contains("per_probe_rate"));

        let e = DeviceError::ActiveProbesExceedArray {
            active: 5000,
            total: 4096,
        };
        assert!(e.to_string().contains("5000"));
        assert!(e.to_string().contains("4096"));
    }
}
