//! A managed NAND flash device model — the first device to enter the
//! workspace through the capability seam instead of the paper's closed
//! MEMS/disk pair.
//!
//! Flash has no moving medium, but it fits the same refill-cycle energy
//! model: the "seek" is the exit from deep power-down, the "shutdown" is
//! the re-entry, and the payoff state is deep power-down instead of a
//! halted medium. What it does *not* share is the wear physics: instead of
//! spring fatigue and probe write cycles, flash wears by **erase-block
//! program/erase (P/E) cycles**, inflated by a **write-amplification
//! factor** that shrinks as the streaming buffer grows (large aligned
//! bursts avoid partial-block programs and copy-back traffic).
//!
//! The parameters of [`FlashDevice::mobile_mlc`] are calibrated to a
//! 2011-class managed eMMC part; like the 1.8-inch disk they are
//! representative, not tabulated in the paper.

use std::fmt;

use memstream_units::{BitRate, DataSize, Duration, Power};

use crate::capability::{
    SimBacked, StorageDevice, UtilizationSpec, WearChannel, WearModelled, WearSpec,
};
use crate::error::DeviceError;
use crate::power::{EnergyModelled, PowerState};

/// A managed NAND flash storage device with erase-block wear.
///
/// ```
/// use memstream_device::{EnergyModelled, FlashDevice};
///
/// let flash = FlashDevice::mobile_mlc();
/// // Sub-millisecond overhead: three orders of magnitude below the disk's
/// // spin-up, the same contrast the paper draws for MEMS.
/// assert!(flash.overhead_time().millis() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlashDevice {
    name: String,
    capacity: DataSize,
    media_rate: BitRate,
    resume_time: Duration,
    power_down_time: Duration,
    io_overhead_time: Duration,
    transition_power: Power,
    read_write_power: Power,
    idle_power: Power,
    deep_power_down: Power,
    erase_block: DataSize,
    pe_cycles: f64,
    waf_floor: f64,
    fixed_utilization: f64,
}

impl FlashDevice {
    /// A 2011-class mobile MLC part: 64 GB, 160 Mbps sustained, 0.5 ms
    /// resume / 0.3 ms power-down at 60 mW, 240 mW program/read, 80 mW
    /// idle, 0.1 mW deep power-down, 512 KiB erase blocks rated for 3000
    /// P/E cycles, write-amplification floor 1.1, 7 % over-provisioning
    /// (fixed utilisation 93 %).
    #[must_use]
    pub fn mobile_mlc() -> Self {
        FlashDevice::builder()
            .build()
            .expect("mobile MLC parameters are valid")
    }

    /// Starts building a custom part from the [`FlashDevice::mobile_mlc`]
    /// defaults.
    #[must_use]
    pub fn builder() -> FlashDeviceBuilder {
        FlashDeviceBuilder::new()
    }

    /// Raw media capacity.
    #[must_use]
    pub fn capacity(&self) -> DataSize {
        self.capacity
    }

    /// Size of one erase block.
    #[must_use]
    pub fn erase_block(&self) -> DataSize {
        self.erase_block
    }

    /// Number of erase blocks on the medium.
    #[must_use]
    pub fn erase_blocks(&self) -> u32 {
        let blocks = (self.capacity.bits() / self.erase_block.bits()).floor();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            blocks.max(1.0).min(f64::from(u32::MAX)) as u32
        }
    }

    /// Program/erase cycle rating per block.
    #[must_use]
    pub fn pe_cycles(&self) -> f64 {
        self.pe_cycles
    }

    /// The write-amplification asymptote for large aligned writes.
    #[must_use]
    pub fn waf_floor(&self) -> f64 {
        self.waf_floor
    }

    /// Write amplification at buffer size `buffer`:
    /// `waf(B) = waf_floor + block_bits / B`.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` is zero.
    #[must_use]
    pub fn write_amplification(&self, buffer: DataSize) -> f64 {
        assert!(!buffer.is_zero(), "write amplification needs a buffer");
        self.waf_floor + self.erase_block.bits() / buffer.bits()
    }

    /// The fixed utilisation left after over-provisioning.
    #[must_use]
    pub fn fixed_utilization(&self) -> f64 {
        self.fixed_utilization
    }

    /// Total write budget in bit-writes (`C · pe_cycles`).
    #[must_use]
    pub fn write_budget_bits(&self) -> f64 {
        self.capacity.bits() * self.pe_cycles
    }

    /// Returns a copy with a different P/E-cycle rating.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is not strictly positive.
    #[must_use]
    pub fn with_pe_cycles(&self, cycles: f64) -> Self {
        assert!(cycles > 0.0, "P/E cycles must be positive");
        let mut copy = self.clone();
        copy.pe_cycles = cycles;
        copy
    }
}

impl EnergyModelled for FlashDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn media_rate(&self) -> BitRate {
        self.media_rate
    }

    fn power(&self, state: PowerState) -> Power {
        match state {
            PowerState::Standby => self.deep_power_down,
            PowerState::Seek | PowerState::Shutdown => self.transition_power,
            PowerState::ReadWrite => self.read_write_power,
            PowerState::Idle => self.idle_power,
        }
    }

    /// The pre-transfer overhead is the deep power-down exit.
    fn seek_time(&self) -> Duration {
        self.resume_time
    }

    /// The post-transfer overhead is the deep power-down entry.
    fn shutdown_time(&self) -> Duration {
        self.power_down_time
    }
}

impl WearModelled for FlashDevice {
    fn wear_channels(&self) -> Vec<WearChannel> {
        vec![WearChannel::EraseBudget {
            budget_bits: self.write_budget_bits(),
            block_bits: self.erase_block.bits(),
            waf_floor: self.waf_floor,
        }]
    }
}

impl SimBacked for FlashDevice {
    fn io_overhead_time(&self) -> Duration {
        self.io_overhead_time
    }

    /// Flash pays no striping sync overhead; the format is a single
    /// logical lane.
    fn stripe_width(&self) -> u32 {
        1
    }

    fn wear_spec(&self) -> WearSpec {
        WearSpec::EraseBlocks {
            blocks: self.erase_blocks(),
            block_bits: self.erase_block.bits(),
            pe_cycles: self.pe_cycles,
            waf_floor: self.waf_floor,
        }
    }

    fn clone_sim(&self) -> Box<dyn SimBacked> {
        Box::new(self.clone())
    }
}

impl StorageDevice for FlashDevice {
    fn kind(&self) -> &'static str {
        "flash"
    }

    fn dedup_token(&self) -> String {
        format!("flash:{self:?}")
    }

    fn capacity(&self) -> DataSize {
        self.capacity
    }

    fn energy(&self) -> Option<&dyn EnergyModelled> {
        Some(self)
    }

    fn wear(&self) -> Option<&dyn WearModelled> {
        Some(self)
    }

    fn sim(&self) -> Option<&dyn SimBacked> {
        Some(self)
    }

    fn utilization(&self) -> Option<UtilizationSpec> {
        Some(UtilizationSpec::Constant {
            fraction: self.fixed_utilization,
        })
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn StorageDevice> {
        Box::new(self.clone())
    }
}

impl Default for FlashDevice {
    fn default() -> Self {
        FlashDevice::mobile_mlc()
    }
}

impl fmt::Display for FlashDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} capacity, {} media rate, {} erase blocks)",
            self.name,
            self.capacity,
            self.media_rate,
            self.erase_blocks()
        )
    }
}

/// Builder for [`FlashDevice`], pre-populated with the mobile-MLC
/// defaults.
#[derive(Debug, Clone)]
pub struct FlashDeviceBuilder {
    device: FlashDevice,
}

impl FlashDeviceBuilder {
    /// Creates a builder holding the mobile-MLC defaults.
    #[must_use]
    pub fn new() -> Self {
        FlashDeviceBuilder {
            device: FlashDevice {
                name: "mobile MLC flash (2011 class)".to_owned(),
                capacity: DataSize::from_gigabytes(64.0),
                media_rate: BitRate::from_mbps(160.0),
                resume_time: Duration::from_millis(0.5),
                power_down_time: Duration::from_millis(0.3),
                io_overhead_time: Duration::from_millis(0.5),
                transition_power: Power::from_milliwatts(60.0),
                read_write_power: Power::from_milliwatts(240.0),
                idle_power: Power::from_milliwatts(80.0),
                deep_power_down: Power::from_milliwatts(0.1),
                erase_block: DataSize::from_kibibytes(512.0),
                pe_cycles: 3000.0,
                waf_floor: 1.1,
                fixed_utilization: 0.93,
            },
        }
    }

    /// Sets the device name used in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.device.name = name.into();
        self
    }

    /// Sets the raw capacity.
    #[must_use]
    pub fn capacity(mut self, capacity: DataSize) -> Self {
        self.device.capacity = capacity;
        self
    }

    /// Sets the sustained media rate.
    #[must_use]
    pub fn media_rate(mut self, rate: BitRate) -> Self {
        self.device.media_rate = rate;
        self
    }

    /// Sets the deep power-down exit time (the "seek").
    #[must_use]
    pub fn resume_time(mut self, t: Duration) -> Self {
        self.device.resume_time = t;
        self
    }

    /// Sets the deep power-down entry time (the "shutdown").
    #[must_use]
    pub fn power_down_time(mut self, t: Duration) -> Self {
        self.device.power_down_time = t;
        self
    }

    /// Sets the per-access I/O overhead time.
    #[must_use]
    pub fn io_overhead_time(mut self, t: Duration) -> Self {
        self.device.io_overhead_time = t;
        self
    }

    /// Sets the power drawn during resume and power-down transitions.
    #[must_use]
    pub fn transition_power(mut self, p: Power) -> Self {
        self.device.transition_power = p;
        self
    }

    /// Sets the program/read power.
    #[must_use]
    pub fn read_write_power(mut self, p: Power) -> Self {
        self.device.read_write_power = p;
        self
    }

    /// Sets the idle (ready, clocked) power.
    #[must_use]
    pub fn idle_power(mut self, p: Power) -> Self {
        self.device.idle_power = p;
        self
    }

    /// Sets the deep power-down power.
    #[must_use]
    pub fn deep_power_down(mut self, p: Power) -> Self {
        self.device.deep_power_down = p;
        self
    }

    /// Sets the erase-block size.
    #[must_use]
    pub fn erase_block(mut self, size: DataSize) -> Self {
        self.device.erase_block = size;
        self
    }

    /// Sets the P/E-cycle rating per block.
    #[must_use]
    pub fn pe_cycles(mut self, cycles: f64) -> Self {
        self.device.pe_cycles = cycles;
        self
    }

    /// Sets the write-amplification floor (≥ 1).
    #[must_use]
    pub fn waf_floor(mut self, waf: f64) -> Self {
        self.device.waf_floor = waf;
        self
    }

    /// Sets the fixed utilisation left after over-provisioning.
    #[must_use]
    pub fn fixed_utilization(mut self, fraction: f64) -> Self {
        self.device.fixed_utilization = fraction;
        self
    }

    /// Validates and produces the device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if any strictly-positive parameter is zero
    /// or NaN, if the write-amplification floor is below 1, if the fixed
    /// utilisation leaves `(0, 1]`, or if deep power-down is not the
    /// lowest power state.
    pub fn build(self) -> Result<FlashDevice, DeviceError> {
        let d = self.device;
        if d.capacity.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "capacity",
            });
        }
        if d.media_rate.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "media_rate",
            });
        }
        if d.resume_time.is_zero() && d.power_down_time.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "resume_time + power_down_time",
            });
        }
        if d.erase_block.is_zero() || d.erase_block > d.capacity {
            return Err(DeviceError::ZeroParameter {
                parameter: "erase_block",
            });
        }
        if d.pe_cycles <= 0.0 || d.pe_cycles.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "pe_cycles",
            });
        }
        if d.waf_floor < 1.0 || d.waf_floor.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "waf_floor",
            });
        }
        if d.fixed_utilization <= 0.0 || d.fixed_utilization.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "fixed_utilization",
            });
        }
        if d.fixed_utilization > 1.0 {
            return Err(DeviceError::FractionOutOfRange {
                parameter: "fixed_utilization",
                value: d.fixed_utilization,
            });
        }
        for (name, p) in [
            ("idle", d.idle_power),
            ("read/write", d.read_write_power),
            ("transition", d.transition_power),
        ] {
            if p < d.deep_power_down {
                return Err(DeviceError::StandbyNotLowest {
                    standby_watts: d.deep_power_down.watts(),
                    undercut_by: name,
                    other_watts: p.watts(),
                });
            }
        }
        Ok(d)
    }
}

impl Default for FlashDeviceBuilder {
    fn default() -> Self {
        FlashDeviceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mobile_mlc_overheads_are_sub_millisecond() {
        let f = FlashDevice::mobile_mlc();
        assert!((f.overhead_time().millis() - 0.8).abs() < 1e-12);
        assert!(f.overhead_energy().joules() > 0.0);
    }

    #[test]
    fn erase_block_count_covers_the_capacity() {
        let f = FlashDevice::mobile_mlc();
        let expected = (f.capacity().bits() / f.erase_block().bits()).floor();
        assert_eq!(f.erase_blocks(), expected as u32);
        assert!(f.erase_blocks() > 100_000);
    }

    #[test]
    fn write_amplification_decreases_with_buffer() {
        let f = FlashDevice::mobile_mlc();
        let small = f.write_amplification(DataSize::from_kibibytes(8.0));
        let large = f.write_amplification(DataSize::from_kibibytes(512.0));
        assert!(small > large);
        assert!((large - (f.waf_floor() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_sub_unity_waf() {
        let err = FlashDevice::builder().waf_floor(0.9).build().unwrap_err();
        assert!(matches!(err, DeviceError::ZeroParameter { .. }));
    }

    #[test]
    fn builder_rejects_deep_power_down_above_idle() {
        let err = FlashDevice::builder()
            .deep_power_down(Power::from_milliwatts(100.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::StandbyNotLowest { .. }));
    }

    #[test]
    fn builder_rejects_block_larger_than_capacity() {
        let err = FlashDevice::builder()
            .capacity(DataSize::from_kibibytes(256.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::ZeroParameter { .. }));
    }

    proptest! {
        #[test]
        fn waf_is_monotone_decreasing_in_buffer(kib in 1.0..10_000.0f64) {
            let f = FlashDevice::mobile_mlc();
            let b1 = DataSize::from_kibibytes(kib);
            let b2 = DataSize::from_kibibytes(kib * 2.0);
            prop_assert!(f.write_amplification(b2) < f.write_amplification(b1));
            prop_assert!(f.write_amplification(b1) >= f.waf_floor());
        }

        #[test]
        fn pe_rating_scales_the_budget(pe in 100.0..100_000.0f64) {
            let f = FlashDevice::mobile_mlc().with_pe_cycles(pe);
            prop_assert_eq!(f.write_budget_bits(), f.capacity().bits() * pe);
        }
    }
}
