//! A 1.8-inch disk drive model, the paper's comparison device.
//!
//! §III-A.1 contrasts the MEMS break-even buffer (0.07–8.87 kB over
//! 32–4096 kbps) with that of a 1.8-inch drive (0.08–9.29 MB) — three orders
//! of magnitude. The paper does not tabulate the drive's parameters (they
//! come from Khatib's 2009 thesis), so this model is *calibrated*: the
//! defaults below land the break-even range on the published values. See
//! `DESIGN.md` §4.5 for the substitution note.

use std::fmt;

use memstream_units::{BitRate, DataSize, Duration, Power};

use crate::capability::{StorageDevice, UtilizationSpec, WearChannel, WearModelled};
use crate::error::DeviceError;
use crate::power::{EnergyModelled, MechanicalDevice, PowerState};

/// A small-form-factor disk drive with spin-up/down overheads.
///
/// ```
/// use memstream_device::{DiskDevice, EnergyModelled};
///
/// let disk = DiskDevice::calibrated_1p8_inch();
/// // Disk overhead is seconds, MEMS overhead is milliseconds: the three
/// // orders of magnitude in the break-even buffer come from right here.
/// assert!(disk.overhead_time().seconds() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskDevice {
    name: String,
    capacity: DataSize,
    media_rate: BitRate,
    spin_up_time: Duration,
    spin_down_time: Duration,
    spin_up_power: Power,
    spin_down_power: Power,
    read_write_power: Power,
    idle_power: Power,
    standby_power: Power,
    /// Start/stop (load/unload) cycle rating; the paper quotes ~10⁵ for the
    /// 1.8-inch class.
    start_stop_cycles: f64,
    /// Fixed fraction of the raw capacity left after the LBA sector format
    /// (sync marks, servo wedges, ECC) — set at manufacture time, so it is
    /// buffer-independent, unlike the MEMS sawtooth.
    format_utilization: f64,
}

impl DiskDevice {
    /// A representative 1.8-inch drive calibrated so that its break-even
    /// buffer over 32–4096 kbps spans ~0.08–~10 MB, reproducing the
    /// three-orders-of-magnitude contrast of §III-A.1.
    ///
    /// Calibration (see `DESIGN.md` §4.5): spin-up 2.5 s at 2.2 W, spin-down
    /// 1.0 s at 0.8 W, idle 400 mW, standby 100 mW, media rate 100 Mbps,
    /// start/stop rating 10⁵ cycles.
    #[must_use]
    pub fn calibrated_1p8_inch() -> Self {
        DiskDevice::builder()
            .build()
            .expect("calibrated 1.8-inch parameters are valid")
    }

    /// Starts building a custom drive from the calibrated 1.8-inch defaults.
    #[must_use]
    pub fn builder() -> DiskDeviceBuilder {
        DiskDeviceBuilder::new()
    }

    /// Raw drive capacity.
    #[must_use]
    pub fn capacity(&self) -> DataSize {
        self.capacity
    }

    /// Start/stop cycle rating (the disk analogue of the springs'
    /// duty-cycle rating; ~10⁵ for this drive class per §III-C.1).
    #[must_use]
    pub fn start_stop_cycles(&self) -> f64 {
        self.start_stop_cycles
    }

    /// The fixed utilisation left after the drive's LBA sector format.
    #[must_use]
    pub fn format_utilization(&self) -> f64 {
        self.format_utilization
    }
}

impl WearModelled for DiskDevice {
    /// The drive's one wear mechanism: every refill round trip spends one
    /// head load/unload (start-stop) cycle — the same Eq. (5) duty-cycle
    /// law as the MEMS springs, at the 1.8-inch class's ~10⁵ rating
    /// (§III-C.1's "three orders of magnitude" argument lives in this
    /// rating gap).
    fn wear_channels(&self) -> Vec<WearChannel> {
        vec![WearChannel::DutyCycle {
            rating: self.start_stop_cycles,
        }]
    }
}

impl EnergyModelled for DiskDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn media_rate(&self) -> BitRate {
        self.media_rate
    }

    fn power(&self, state: PowerState) -> Power {
        match state {
            PowerState::Standby => self.standby_power,
            PowerState::Seek => self.spin_up_power,
            PowerState::ReadWrite => self.read_write_power,
            PowerState::Idle => self.idle_power,
            PowerState::Shutdown => self.spin_down_power,
        }
    }

    /// For a disk the pre-transfer overhead is the spin-up.
    fn seek_time(&self) -> Duration {
        self.spin_up_time
    }

    /// For a disk the post-transfer overhead is the spin-down.
    fn shutdown_time(&self) -> Duration {
        self.spin_down_time
    }
}

impl MechanicalDevice for DiskDevice {}

impl StorageDevice for DiskDevice {
    fn kind(&self) -> &'static str {
        "disk"
    }

    fn dedup_token(&self) -> String {
        format!("disk:{self:?}")
    }

    fn capacity(&self) -> DataSize {
        self.capacity
    }

    fn energy(&self) -> Option<&dyn EnergyModelled> {
        Some(self)
    }

    /// Start-stop wear rides the generic duty-cycle channel, so disk
    /// cells plan full (energy, capacity, lifetime) trade-offs instead of
    /// dropping to energy-only evaluation. To reproduce the paper-era
    /// break-even-comparison role (§III-A.1), register the drive behind
    /// [`crate::EnergyOnly`].
    fn wear(&self) -> Option<&dyn WearModelled> {
        Some(self)
    }

    fn utilization(&self) -> Option<UtilizationSpec> {
        Some(UtilizationSpec::Constant {
            fraction: self.format_utilization,
        })
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn StorageDevice> {
        Box::new(self.clone())
    }
}

impl Default for DiskDevice {
    fn default() -> Self {
        DiskDevice::calibrated_1p8_inch()
    }
}

impl fmt::Display for DiskDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} capacity, {} media rate)",
            self.name, self.capacity, self.media_rate
        )
    }
}

/// Builder for [`DiskDevice`], pre-populated with the calibrated 1.8-inch
/// defaults.
#[derive(Debug, Clone)]
pub struct DiskDeviceBuilder {
    device: DiskDevice,
}

impl DiskDeviceBuilder {
    /// Creates a builder holding the calibrated 1.8-inch defaults.
    #[must_use]
    pub fn new() -> Self {
        DiskDeviceBuilder {
            device: DiskDevice {
                name: "calibrated 1.8-inch disk drive".to_owned(),
                capacity: DataSize::from_gigabytes(80.0),
                media_rate: BitRate::from_mbps(100.0),
                spin_up_time: Duration::from_seconds(2.5),
                spin_down_time: Duration::from_seconds(1.0),
                spin_up_power: Power::from_watts(2.2),
                spin_down_power: Power::from_watts(0.8),
                read_write_power: Power::from_watts(1.4),
                idle_power: Power::from_milliwatts(400.0),
                standby_power: Power::from_milliwatts(100.0),
                start_stop_cycles: 1e5,
                format_utilization: 0.95,
            },
        }
    }

    /// Sets the drive name used in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.device.name = name.into();
        self
    }

    /// Sets the raw capacity.
    #[must_use]
    pub fn capacity(mut self, capacity: DataSize) -> Self {
        self.device.capacity = capacity;
        self
    }

    /// Sets the sustained media rate.
    #[must_use]
    pub fn media_rate(mut self, rate: BitRate) -> Self {
        self.device.media_rate = rate;
        self
    }

    /// Sets the spin-up time.
    #[must_use]
    pub fn spin_up_time(mut self, t: Duration) -> Self {
        self.device.spin_up_time = t;
        self
    }

    /// Sets the spin-down time.
    #[must_use]
    pub fn spin_down_time(mut self, t: Duration) -> Self {
        self.device.spin_down_time = t;
        self
    }

    /// Sets the spin-up power.
    #[must_use]
    pub fn spin_up_power(mut self, p: Power) -> Self {
        self.device.spin_up_power = p;
        self
    }

    /// Sets the spin-down power.
    #[must_use]
    pub fn spin_down_power(mut self, p: Power) -> Self {
        self.device.spin_down_power = p;
        self
    }

    /// Sets the read/write power.
    #[must_use]
    pub fn read_write_power(mut self, p: Power) -> Self {
        self.device.read_write_power = p;
        self
    }

    /// Sets the idle power.
    #[must_use]
    pub fn idle_power(mut self, p: Power) -> Self {
        self.device.idle_power = p;
        self
    }

    /// Sets the standby power.
    #[must_use]
    pub fn standby_power(mut self, p: Power) -> Self {
        self.device.standby_power = p;
        self
    }

    /// Sets the start/stop cycle rating.
    #[must_use]
    pub fn start_stop_cycles(mut self, cycles: f64) -> Self {
        self.device.start_stop_cycles = cycles;
        self
    }

    /// Sets the fixed utilisation left after the LBA sector format.
    #[must_use]
    pub fn format_utilization(mut self, fraction: f64) -> Self {
        self.device.format_utilization = fraction;
        self
    }

    /// Validates and produces the drive.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if a strictly-positive parameter is zero or
    /// standby is not the lowest power state.
    pub fn build(self) -> Result<DiskDevice, DeviceError> {
        let d = self.device;
        if d.capacity.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "capacity",
            });
        }
        if d.media_rate.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "media_rate",
            });
        }
        if d.spin_up_time.is_zero() && d.spin_down_time.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "spin_up_time + spin_down_time",
            });
        }
        if d.start_stop_cycles <= 0.0 || d.start_stop_cycles.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "start_stop_cycles",
            });
        }
        if d.format_utilization <= 0.0 || d.format_utilization.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "format_utilization",
            });
        }
        if d.format_utilization > 1.0 {
            return Err(DeviceError::FractionOutOfRange {
                parameter: "format_utilization",
                value: d.format_utilization,
            });
        }
        for (name, p) in [
            ("idle", d.idle_power),
            ("read/write", d.read_write_power),
            ("spin-up", d.spin_up_power),
            ("spin-down", d.spin_down_power),
        ] {
            if p < d.standby_power {
                return Err(DeviceError::StandbyNotLowest {
                    standby_watts: d.standby_power.watts(),
                    undercut_by: name,
                    other_watts: p.watts(),
                });
            }
        }
        Ok(d)
    }
}

impl Default for DiskDeviceBuilder {
    fn default() -> Self {
        DiskDeviceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_seconds_not_milliseconds() {
        let disk = DiskDevice::calibrated_1p8_inch();
        assert!((disk.overhead_time().seconds() - 3.5).abs() < 1e-12);
        // Eoh = 2.5*2.2 + 1.0*0.8 = 6.3 J.
        assert!((disk.overhead_energy().joules() - 6.3).abs() < 1e-12);
    }

    #[test]
    fn overhead_ratio_vs_mems_is_three_orders_of_magnitude() {
        use crate::mems::MemsDevice;
        let disk = DiskDevice::calibrated_1p8_inch();
        let mems = MemsDevice::table1();
        let ratio = disk.overhead_energy() / mems.overhead_energy();
        assert!(
            (1e2..1e5).contains(&ratio),
            "expected ~3 orders of magnitude, got {ratio}"
        );
    }

    #[test]
    fn builder_rejects_standby_above_idle() {
        let err = DiskDevice::builder()
            .standby_power(Power::from_watts(0.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::StandbyNotLowest { .. }));
    }

    #[test]
    fn builder_rejects_zero_media_rate() {
        let err = DiskDevice::builder()
            .media_rate(BitRate::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::ZeroParameter { .. }));
    }

    #[test]
    fn start_stop_rating_is_1e5_class() {
        // §III-C.1: "the 10^5 rating of the 1.8-inch disk drive".
        assert_eq!(DiskDevice::calibrated_1p8_inch().start_stop_cycles(), 1e5);
    }

    #[test]
    fn disk_exposes_the_full_pipeline_capabilities() {
        let disk = DiskDevice::calibrated_1p8_inch();
        assert!(disk.energy().is_some());
        assert!(disk.wear().is_some());
        match disk.utilization() {
            Some(UtilizationSpec::Constant { fraction }) => assert_eq!(fraction, 0.95),
            other => panic!("expected a constant utilisation spec, got {other:?}"),
        }
        // Start-stop wear is the drive's single duty-cycle channel.
        let channels = disk.wear_channels();
        assert_eq!(
            channels,
            vec![WearChannel::DutyCycle { rating: 1e5 }],
            "start-stop cycles ride the generic duty-cycle channel"
        );
        // Still no sim backing: the simulator only replays MEMS and flash.
        assert!(disk.sim().is_none());
    }

    #[test]
    fn builder_rejects_out_of_range_format_utilization() {
        // Non-positive (or NaN) values violate strict positivity ...
        for bad in [0.0, -0.1, f64::NAN] {
            let err = DiskDevice::builder()
                .format_utilization(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, DeviceError::ZeroParameter { .. }), "{bad}");
        }
        // ... while a positive value above 1 is a range error, diagnosed
        // as such (telling the user "must be strictly positive" about 1.5
        // would point them the wrong way).
        let err = DiskDevice::builder()
            .format_utilization(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::FractionOutOfRange {
                parameter: "format_utilization",
                ..
            }
        ));
    }
}
