//! The probe-based MEMS storage device model (Table I of the paper).

use std::fmt;

use memstream_units::{BitRate, DataSize, Duration, Power};

use crate::capability::{
    SimBacked, StorageDevice, UtilizationSpec, WearChannel, WearModelled, WearSpec,
};
use crate::error::DeviceError;
use crate::power::{EnergyModelled, MechanicalDevice, PowerState};

/// Geometry of the probe array.
///
/// Table I: a `64 × 64` array of which 1024 probes are simultaneously
/// active, each sweeping a `100 × 100 µm²` field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeArray {
    rows: u32,
    cols: u32,
    active: u32,
    field_side_um: f64,
}

impl ProbeArray {
    /// Creates a probe array description.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if any dimension is zero or if more probes
    /// are active than exist.
    pub fn new(rows: u32, cols: u32, active: u32, field_side_um: f64) -> Result<Self, DeviceError> {
        if rows == 0 {
            return Err(DeviceError::ZeroParameter { parameter: "rows" });
        }
        if cols == 0 {
            return Err(DeviceError::ZeroParameter { parameter: "cols" });
        }
        if active == 0 {
            return Err(DeviceError::ZeroParameter {
                parameter: "active",
            });
        }
        if field_side_um <= 0.0 || field_side_um.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "field_side_um",
            });
        }
        let total = rows * cols;
        if active > total {
            return Err(DeviceError::ActiveProbesExceedArray { active, total });
        }
        Ok(ProbeArray {
            rows,
            cols,
            active,
            field_side_um,
        })
    }

    /// The Table I array: `64 × 64`, 1024 active, `100 × 100 µm²` fields.
    #[must_use]
    pub fn table1() -> Self {
        ProbeArray::new(64, 64, 1024, 100.0).expect("table 1 array is valid")
    }

    /// Total number of probes in the array.
    #[must_use]
    pub fn total_probes(&self) -> u32 {
        self.rows * self.cols
    }

    /// Number of simultaneously active probes (the striping width `K`).
    #[must_use]
    pub fn active_probes(&self) -> u32 {
        self.active
    }

    /// Side length of one probe field in micrometres.
    #[must_use]
    pub fn field_side_um(&self) -> f64 {
        self.field_side_um
    }

    /// Area of one probe field in square micrometres.
    #[must_use]
    pub fn field_area_um2(&self) -> f64 {
        self.field_side_um * self.field_side_um
    }

    /// Total scanned media area in square millimetres.
    ///
    /// For Table I this is `4096 × 0.01 mm² ≈ 41 mm²`, the footprint the
    /// paper's introduction quotes.
    #[must_use]
    pub fn total_area_mm2(&self) -> f64 {
        f64::from(self.total_probes()) * self.field_area_um2() * 1e-6
    }
}

impl fmt::Display for ProbeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} probes ({} active), {:.0}x{:.0} um^2 fields",
            self.rows, self.cols, self.active, self.field_side_um, self.field_side_um
        )
    }
}

/// The modelled probe-based MEMS storage device.
///
/// Construct via [`MemsDevice::table1`] for the paper's reference
/// configuration, or [`MemsDevice::builder`] to explore alternatives.
///
/// ```
/// use memstream_device::{EnergyModelled, MemsDevice};
///
/// let mems = MemsDevice::table1();
/// // rm = 1024 active probes x 100 kbps
/// assert_eq!(mems.media_rate().megabits_per_second(), 102.4);
/// // Eoh = 2 ms x 672 mW + 1 ms x 672 mW
/// assert!((mems.overhead_energy().millijoules() - 2.016).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemsDevice {
    name: String,
    array: ProbeArray,
    capacity: DataSize,
    per_probe_rate: BitRate,
    seek_time: Duration,
    shutdown_time: Duration,
    io_overhead_time: Duration,
    read_write_power: Power,
    seek_power: Power,
    standby_power: Power,
    idle_power: Power,
    shutdown_power: Power,
    probe_write_cycles: f64,
    spring_duty_cycles: f64,
}

impl MemsDevice {
    /// The device of Table I (IBM prototype, Lantz et al. 2007).
    ///
    /// | Parameter | Value |
    /// |---|---|
    /// | Probe array | 64 × 64, 1024 active |
    /// | Capacity | 120 GB |
    /// | Per-probe rate | 100 kbps |
    /// | Seek / shutdown time | 2 ms / 1 ms |
    /// | R/W, seek, standby, idle, shutdown power | 316, 672, 5, 120, 672 mW |
    /// | Probe write cycles | 100 (low-end) |
    /// | Spring duty cycles | 10⁸ (electroplated nickel) |
    #[must_use]
    pub fn table1() -> Self {
        MemsDevice::builder()
            .build()
            .expect("table 1 parameters are valid")
    }

    /// Starts building a custom device from the Table I defaults.
    #[must_use]
    pub fn builder() -> MemsDeviceBuilder {
        MemsDeviceBuilder::new()
    }

    /// The probe array geometry.
    #[must_use]
    pub fn array(&self) -> &ProbeArray {
        &self.array
    }

    /// Raw device capacity (Table I: 120 GB).
    #[must_use]
    pub fn capacity(&self) -> DataSize {
        self.capacity
    }

    /// Data rate of a single probe (Table I: 100 kbps).
    #[must_use]
    pub fn per_probe_rate(&self) -> BitRate {
        self.per_probe_rate
    }

    /// Per-access I/O overhead time (Table I: 2 ms), charged to best-effort
    /// requests in the simulator.
    #[must_use]
    pub fn io_overhead_time(&self) -> Duration {
        self.io_overhead_time
    }

    /// Probe write-cycle rating `Dpb` (Table I: 100 or 200).
    ///
    /// The number of times the probes can overwrite the full device before
    /// becoming unreliable.
    #[must_use]
    pub fn probe_write_cycles(&self) -> f64 {
        self.probe_write_cycles
    }

    /// Spring duty-cycle rating `Dsp` (Table I: 10⁸ nickel, 10¹² silicon).
    #[must_use]
    pub fn spring_duty_cycles(&self) -> f64 {
        self.spring_duty_cycles
    }

    /// Returns a copy with a different probe write-cycle rating, the knob
    /// turned between Fig. 3b (`Dpb = 100`) and Fig. 3c (`Dpb = 200`).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is not strictly positive.
    #[must_use]
    pub fn with_probe_write_cycles(&self, cycles: f64) -> Self {
        assert!(cycles > 0.0, "probe write cycles must be positive");
        let mut copy = self.clone();
        copy.probe_write_cycles = cycles;
        copy
    }

    /// Returns a copy with a different spring duty-cycle rating, the knob
    /// turned between Fig. 3b (`10⁸`, nickel) and Fig. 3c (`10¹²`, silicon).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is not strictly positive.
    #[must_use]
    pub fn with_spring_duty_cycles(&self, cycles: f64) -> Self {
        assert!(cycles > 0.0, "spring duty cycles must be positive");
        let mut copy = self.clone();
        copy.spring_duty_cycles = cycles;
        copy
    }

    /// Number of bits stored per probe field (capacity / total probes).
    #[must_use]
    pub fn bits_per_probe_field(&self) -> f64 {
        self.capacity.bits() / f64::from(self.array.total_probes())
    }

    /// Areal density in terabits per square inch implied by the capacity
    /// and the scanned area; the introduction quotes `> 1 Tb/in²`.
    #[must_use]
    pub fn areal_density_tb_per_in2(&self) -> f64 {
        // 1 in² = 645.16 mm².
        let bits_per_mm2 = self.capacity.bits() / self.array.total_area_mm2();
        bits_per_mm2 * 645.16 / 1e12
    }
}

impl EnergyModelled for MemsDevice {
    fn name(&self) -> &str {
        &self.name
    }

    /// `rm` = active probes × per-probe rate (Table I: 102.4 Mbps).
    fn media_rate(&self) -> BitRate {
        self.per_probe_rate * f64::from(self.array.active_probes())
    }

    fn power(&self, state: PowerState) -> Power {
        match state {
            PowerState::Standby => self.standby_power,
            PowerState::Seek => self.seek_power,
            PowerState::ReadWrite => self.read_write_power,
            PowerState::Idle => self.idle_power,
            PowerState::Shutdown => self.shutdown_power,
        }
    }

    fn seek_time(&self) -> Duration {
        self.seek_time
    }

    fn shutdown_time(&self) -> Duration {
        self.shutdown_time
    }
}

impl MechanicalDevice for MemsDevice {}

impl WearModelled for MemsDevice {
    /// Springs first (the Eq. (5) duty-cycle channel), probes second (the
    /// Eq. (6) utilisation-scaled write budget).
    fn wear_channels(&self) -> Vec<WearChannel> {
        vec![
            WearChannel::DutyCycle {
                rating: self.spring_duty_cycles,
            },
            WearChannel::WriteBudget {
                rating: self.probe_write_cycles,
                budget_bits: self.capacity.bits() * self.probe_write_cycles,
            },
        ]
    }
}

impl SimBacked for MemsDevice {
    fn io_overhead_time(&self) -> Duration {
        self.io_overhead_time
    }

    fn stripe_width(&self) -> u32 {
        self.array.active_probes()
    }

    fn wear_spec(&self) -> WearSpec {
        WearSpec::ProbeFatigue {
            active_probes: self.array.active_probes(),
            spring_rating: self.spring_duty_cycles,
            probe_budget_bits: self.capacity.bits() * self.probe_write_cycles,
        }
    }

    fn clone_sim(&self) -> Box<dyn SimBacked> {
        Box::new(self.clone())
    }
}

impl StorageDevice for MemsDevice {
    fn kind(&self) -> &'static str {
        "mems"
    }

    fn dedup_token(&self) -> String {
        format!("mems:{self:?}")
    }

    fn capacity(&self) -> DataSize {
        self.capacity
    }

    fn energy(&self) -> Option<&dyn EnergyModelled> {
        Some(self)
    }

    fn wear(&self) -> Option<&dyn WearModelled> {
        Some(self)
    }

    fn sim(&self) -> Option<&dyn SimBacked> {
        Some(self)
    }

    fn utilization(&self) -> Option<UtilizationSpec> {
        Some(UtilizationSpec::SectorFormat {
            stripe_width: self.array.active_probes(),
        })
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn StorageDevice> {
        Box::new(self.clone())
    }
}

impl Default for MemsDevice {
    fn default() -> Self {
        MemsDevice::table1()
    }
}

impl fmt::Display for MemsDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} capacity, {} media rate)",
            self.name,
            self.array,
            self.capacity,
            self.media_rate()
        )
    }
}

/// Builder for [`MemsDevice`], pre-populated with the Table I defaults.
///
/// ```
/// use memstream_device::MemsDevice;
/// use memstream_units::BitRate;
///
/// # fn main() -> Result<(), memstream_device::DeviceError> {
/// let fast = MemsDevice::builder()
///     .per_probe_rate(BitRate::from_kbps(200.0))
///     .name("hypothetical 2x-rate device")
///     .build()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemsDeviceBuilder {
    device: MemsDevice,
}

impl MemsDeviceBuilder {
    /// Creates a builder holding the Table I defaults.
    #[must_use]
    pub fn new() -> Self {
        MemsDeviceBuilder {
            device: MemsDevice {
                name: "IBM-prototype MEMS store (Table I)".to_owned(),
                array: ProbeArray::table1(),
                capacity: DataSize::from_gigabytes(120.0),
                per_probe_rate: BitRate::from_kbps(100.0),
                seek_time: Duration::from_millis(2.0),
                shutdown_time: Duration::from_millis(1.0),
                io_overhead_time: Duration::from_millis(2.0),
                read_write_power: Power::from_milliwatts(316.0),
                seek_power: Power::from_milliwatts(672.0),
                standby_power: Power::from_milliwatts(5.0),
                idle_power: Power::from_milliwatts(120.0),
                shutdown_power: Power::from_milliwatts(672.0),
                probe_write_cycles: 100.0,
                spring_duty_cycles: 1e8,
            },
        }
    }

    /// Sets the device name used in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.device.name = name.into();
        self
    }

    /// Sets the probe array geometry.
    #[must_use]
    pub fn array(mut self, array: ProbeArray) -> Self {
        self.device.array = array;
        self
    }

    /// Sets the raw capacity.
    #[must_use]
    pub fn capacity(mut self, capacity: DataSize) -> Self {
        self.device.capacity = capacity;
        self
    }

    /// Sets the per-probe data rate.
    #[must_use]
    pub fn per_probe_rate(mut self, rate: BitRate) -> Self {
        self.device.per_probe_rate = rate;
        self
    }

    /// Sets the seek time `tsk`.
    #[must_use]
    pub fn seek_time(mut self, t: Duration) -> Self {
        self.device.seek_time = t;
        self
    }

    /// Sets the shutdown time `tsd`.
    #[must_use]
    pub fn shutdown_time(mut self, t: Duration) -> Self {
        self.device.shutdown_time = t;
        self
    }

    /// Sets the per-access I/O overhead time.
    #[must_use]
    pub fn io_overhead_time(mut self, t: Duration) -> Self {
        self.device.io_overhead_time = t;
        self
    }

    /// Sets the read/write power.
    #[must_use]
    pub fn read_write_power(mut self, p: Power) -> Self {
        self.device.read_write_power = p;
        self
    }

    /// Sets the seek power.
    #[must_use]
    pub fn seek_power(mut self, p: Power) -> Self {
        self.device.seek_power = p;
        self
    }

    /// Sets the standby power.
    #[must_use]
    pub fn standby_power(mut self, p: Power) -> Self {
        self.device.standby_power = p;
        self
    }

    /// Sets the idle power.
    #[must_use]
    pub fn idle_power(mut self, p: Power) -> Self {
        self.device.idle_power = p;
        self
    }

    /// Sets the power drawn during the shutdown transition.
    #[must_use]
    pub fn shutdown_power(mut self, p: Power) -> Self {
        self.device.shutdown_power = p;
        self
    }

    /// Sets the probe write-cycle rating `Dpb`.
    #[must_use]
    pub fn probe_write_cycles(mut self, cycles: f64) -> Self {
        self.device.probe_write_cycles = cycles;
        self
    }

    /// Sets the spring duty-cycle rating `Dsp`.
    #[must_use]
    pub fn spring_duty_cycles(mut self, cycles: f64) -> Self {
        self.device.spring_duty_cycles = cycles;
        self
    }

    /// Validates and produces the device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if any strictly-positive parameter is zero,
    /// if standby is not the lowest power state, or if the wear ratings are
    /// non-positive.
    pub fn build(self) -> Result<MemsDevice, DeviceError> {
        let d = self.device;
        if d.capacity.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "capacity",
            });
        }
        if d.per_probe_rate.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "per_probe_rate",
            });
        }
        if d.seek_time.is_zero() && d.shutdown_time.is_zero() {
            return Err(DeviceError::ZeroParameter {
                parameter: "seek_time + shutdown_time",
            });
        }
        if d.probe_write_cycles <= 0.0 || d.probe_write_cycles.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "probe_write_cycles",
            });
        }
        if d.spring_duty_cycles <= 0.0 || d.spring_duty_cycles.is_nan() {
            return Err(DeviceError::ZeroParameter {
                parameter: "spring_duty_cycles",
            });
        }
        for (name, p) in [
            ("idle", d.idle_power),
            ("read/write", d.read_write_power),
            ("seek", d.seek_power),
            ("shutdown", d.shutdown_power),
        ] {
            if p < d.standby_power {
                return Err(DeviceError::StandbyNotLowest {
                    standby_watts: d.standby_power.watts(),
                    undercut_by: name,
                    other_watts: p.watts(),
                });
            }
        }
        Ok(d)
    }
}

impl Default for MemsDeviceBuilder {
    fn default() -> Self {
        MemsDeviceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_media_rate_is_102_4_mbps() {
        let d = MemsDevice::table1();
        assert_eq!(d.media_rate().bits_per_second(), 102_400_000.0);
    }

    #[test]
    fn table1_overheads() {
        let d = MemsDevice::table1();
        assert!((d.overhead_time().millis() - 3.0).abs() < 1e-12);
        assert!((d.overhead_energy().millijoules() - 2.016).abs() < 1e-12);
        assert!((d.overhead_power().milliwatts() - 672.0).abs() < 1e-9);
    }

    #[test]
    fn table1_footprint_is_about_41_mm2() {
        // The paper's introduction: "a small footprint (41 mm^2)".
        let area = MemsDevice::table1().array().total_area_mm2();
        assert!((area - 40.96).abs() < 1e-9, "got {area}");
    }

    #[test]
    fn table1_areal_density_near_1_tb_per_in2() {
        // 120 GB over ~41 mm^2 is ~15 Tb/in^2 of *user* capacity across the
        // full array; per the introduction the technology is >1 Tb/in^2.
        let density = MemsDevice::table1().areal_density_tb_per_in2();
        assert!(density > 1.0, "got {density}");
    }

    #[test]
    fn rating_knobs_produce_modified_copies() {
        let base = MemsDevice::table1();
        let hi = base
            .with_probe_write_cycles(200.0)
            .with_spring_duty_cycles(1e12);
        assert_eq!(hi.probe_write_cycles(), 200.0);
        assert_eq!(hi.spring_duty_cycles(), 1e12);
        // Original untouched.
        assert_eq!(base.probe_write_cycles(), 100.0);
        assert_eq!(base.spring_duty_cycles(), 1e8);
    }

    #[test]
    fn builder_rejects_zero_rate() {
        let err = MemsDevice::builder()
            .per_probe_rate(memstream_units::BitRate::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::ZeroParameter { .. }));
    }

    #[test]
    fn builder_rejects_standby_above_idle() {
        let err = MemsDevice::builder()
            .standby_power(Power::from_milliwatts(200.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::StandbyNotLowest { .. }));
    }

    #[test]
    fn probe_array_rejects_overcommitted_active_count() {
        let err = ProbeArray::new(8, 8, 65, 100.0).unwrap_err();
        assert!(matches!(err, DeviceError::ActiveProbesExceedArray { .. }));
    }

    #[test]
    fn probe_array_total_and_active() {
        let a = ProbeArray::table1();
        assert_eq!(a.total_probes(), 4096);
        assert_eq!(a.active_probes(), 1024);
        assert_eq!(a.field_area_um2(), 10_000.0);
    }

    #[test]
    fn display_mentions_capacity() {
        let text = MemsDevice::table1().to_string();
        assert!(text.contains("GiB") || text.contains("GB"), "{text}");
    }

    proptest! {
        #[test]
        fn media_rate_scales_with_active_probes(active in 1u32..=4096) {
            let d = MemsDevice::builder()
                .array(ProbeArray::new(64, 64, active, 100.0).unwrap())
                .build()
                .unwrap();
            let expected = 100_000.0 * f64::from(active);
            prop_assert!((d.media_rate().bits_per_second() - expected).abs() < 1e-6);
        }

        #[test]
        fn builder_roundtrips_wear_ratings(dpb in 1.0..1e4f64, dsp in 1.0..1e14f64) {
            let d = MemsDevice::builder()
                .probe_write_cycles(dpb)
                .spring_duty_cycles(dsp)
                .build()
                .unwrap();
            prop_assert_eq!(d.probe_write_cycles(), dpb);
            prop_assert_eq!(d.spring_duty_cycles(), dsp);
        }
    }
}
