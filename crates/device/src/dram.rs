//! DRAM buffer energy model, patterned after the Micron TN-46-03
//! "Calculating Memory System Power for DDR" technical note.
//!
//! The paper sizes a DRAM buffer in front of the MEMS device and *includes*
//! the DRAM's retention and access energy in the per-bit figure, concluding
//! it is "negligible due to its tiny size". This module makes that claim
//! checkable: [`DramModel::cycle_energy`] computes the DRAM energy of one
//! refill cycle so `memstream-core` can add it to Eq. (1) and the test suite
//! can assert the negligibility.
//!
//! TN-46-03 decomposes DDR power into background (self-refresh/standby),
//! activate, and read/write burst terms. At the granularity this study
//! needs, two calibrated coefficients capture it:
//!
//! * a **retention power density** (self-refresh power per MiB held), and
//! * an **access energy per bit** moved in or out of the device.

use std::fmt;

use memstream_units::{DataSize, Duration, Energy, Power};

use crate::error::DeviceError;

/// Energy drawn by the DRAM buffer during one refill cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramEnergyBreakdown {
    /// Self-refresh/background energy: retention power × cycle time.
    pub retention: Energy,
    /// Burst energy for data moved into and out of the buffer.
    pub access: Energy,
}

impl DramEnergyBreakdown {
    /// Total DRAM energy for the cycle.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.retention + self.access
    }
}

impl fmt::Display for DramEnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dram energy: retention {}, access {}, total {}",
            self.retention,
            self.access,
            self.total()
        )
    }
}

/// A DDR-class DRAM buffer energy model (Micron TN-46-03 style).
///
/// ```
/// use memstream_device::DramModel;
/// use memstream_units::{DataSize, Duration};
///
/// let dram = DramModel::micron_ddr_mobile();
/// let cycle = dram.cycle_energy(
///     DataSize::from_kibibytes(20.0),   // buffer held
///     Duration::from_seconds(0.16),     // refill cycle Tm
///     DataSize::from_kibibytes(40.0),   // bits moved (in + out)
/// );
/// assert!(cycle.total().joules() < 1e-3); // "negligible"
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    name: String,
    retention_power_per_mib: Power,
    access_energy_per_bit: Energy,
}

impl DramModel {
    /// A mobile DDR part in self-refresh, calibrated from the TN-46-03
    /// methodology: ~70 µW/MiB retention density and ~60 pJ/bit moved.
    #[must_use]
    pub fn micron_ddr_mobile() -> Self {
        DramModel {
            name: "mobile DDR (TN-46-03 calibration)".to_owned(),
            retention_power_per_mib: Power::from_watts(70e-6),
            access_energy_per_bit: Energy::from_joules(60e-12),
        }
    }

    /// Creates a custom DRAM model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ZeroParameter`] if either coefficient is zero.
    pub fn new(
        name: impl Into<String>,
        retention_power_per_mib: Power,
        access_energy_per_bit: Energy,
    ) -> Result<Self, DeviceError> {
        if retention_power_per_mib == Power::ZERO {
            return Err(DeviceError::ZeroParameter {
                parameter: "retention_power_per_mib",
            });
        }
        if access_energy_per_bit == Energy::ZERO {
            return Err(DeviceError::ZeroParameter {
                parameter: "access_energy_per_bit",
            });
        }
        Ok(DramModel {
            name: name.into(),
            retention_power_per_mib,
            access_energy_per_bit,
        })
    }

    /// The model's name for reports.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Retention (self-refresh) power for a buffer of the given size.
    #[must_use]
    pub fn retention_power(&self, buffer: DataSize) -> Power {
        self.retention_power_per_mib * buffer.mebibytes()
    }

    /// Burst energy for moving the given amount of data in or out.
    #[must_use]
    pub fn access_energy(&self, moved: DataSize) -> Energy {
        self.access_energy_per_bit * moved.bits()
    }

    /// DRAM energy of one refill cycle.
    ///
    /// * `buffer` — capacity held (retention is charged for the whole
    ///   cycle; the buffer is allocated whether full or draining).
    /// * `cycle` — the refill cycle duration `Tm`.
    /// * `moved` — total data transferred across the DRAM interface during
    ///   the cycle. For a stream at `rs`, a full cycle moves `B` in from
    ///   the device and `B` out to the decoder, i.e. `2B`.
    #[must_use]
    pub fn cycle_energy(
        &self,
        buffer: DataSize,
        cycle: Duration,
        moved: DataSize,
    ) -> DramEnergyBreakdown {
        DramEnergyBreakdown {
            retention: self.retention_power(buffer) * cycle,
            access: self.access_energy(moved),
        }
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::micron_ddr_mobile()
    }
}

impl fmt::Display for DramModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/MiB retention, {} per bit moved)",
            self.name, self.retention_power_per_mib, self.access_energy_per_bit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_scales_with_buffer_size() {
        let dram = DramModel::micron_ddr_mobile();
        let one = dram.retention_power(DataSize::from_mebibytes(1.0));
        let ten = dram.retention_power(DataSize::from_mebibytes(10.0));
        assert!((ten.watts() - 10.0 * one.watts()).abs() < 1e-15);
    }

    #[test]
    fn access_scales_with_data_moved() {
        let dram = DramModel::micron_ddr_mobile();
        let e = dram.access_energy(DataSize::from_bits(1e9));
        assert!((e.joules() - 60e-12 * 1e9).abs() < 1e-12);
    }

    #[test]
    fn kilobyte_buffers_are_negligible_versus_mems_cycle_energy() {
        // The paper's claim: for a ~20 kB buffer the DRAM term is invisible
        // next to the ~2 mJ MEMS overhead energy per cycle.
        let dram = DramModel::micron_ddr_mobile();
        let buffer = DataSize::from_kibibytes(20.0);
        let cycle = dram.cycle_energy(buffer, Duration::from_seconds(0.17), buffer * 2.0);
        let mems_overhead = Energy::from_millijoules(2.016);
        assert!(cycle.total().joules() < 0.02 * mems_overhead.joules());
    }

    #[test]
    fn megabyte_buffers_are_not_negligible_versus_their_cycles() {
        // Sanity check in the other direction: a disk-scale (MB) buffer held
        // for a long cycle draws measurable retention energy, so the model
        // is not trivially zero.
        let dram = DramModel::micron_ddr_mobile();
        let buffer = DataSize::from_mebibytes(10.0);
        let cycle = dram.cycle_energy(buffer, Duration::from_seconds(100.0), buffer * 2.0);
        assert!(cycle.total().millijoules() > 10.0);
    }

    #[test]
    fn custom_model_rejects_zero_coefficients() {
        assert!(DramModel::new("x", Power::ZERO, Energy::from_joules(1e-12)).is_err());
        assert!(DramModel::new("x", Power::from_watts(1e-6), Energy::ZERO).is_err());
    }

    #[test]
    fn breakdown_total_is_sum() {
        let b = DramEnergyBreakdown {
            retention: Energy::from_joules(1.0),
            access: Energy::from_joules(2.0),
        };
        assert_eq!(b.total().joules(), 3.0);
    }
}
