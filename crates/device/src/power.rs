//! Power states and the mechanical-device abstraction.

use std::fmt;

use memstream_units::{BitRate, Duration, Energy, Power};

/// The power states of a mechanical storage device in the streaming
/// architecture of Fig. 1b.
///
/// A refill cycle walks `Standby → Seek → ReadWrite → (best-effort service,
/// also `ReadWrite`) → Shutdown → Standby`; `Idle` is the reference state of
/// the always-on baseline (medium moving, heads parked, no transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PowerState {
    /// Deep sleep: the medium is halted. Lowest power; the payoff state.
    Standby,
    /// Positioning the medium/probes before a transfer.
    Seek,
    /// Actively reading or writing at the media rate.
    ReadWrite,
    /// Medium in motion but no transfer in progress (always-on baseline).
    Idle,
    /// The transition from active back to standby (spin-down / park).
    Shutdown,
}

impl PowerState {
    /// All states, in cycle order. Useful for tabulating energy breakdowns.
    pub const ALL: [PowerState; 5] = [
        PowerState::Standby,
        PowerState::Seek,
        PowerState::ReadWrite,
        PowerState::Idle,
        PowerState::Shutdown,
    ];
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PowerState::Standby => "standby",
            PowerState::Seek => "seek",
            PowerState::ReadWrite => "read/write",
            PowerState::Idle => "idle",
            PowerState::Shutdown => "shutdown",
        };
        f.write_str(name)
    }
}

/// Capability: the device can be driven by the refill-cycle energy model
/// of Eq. (1). It pays a fixed time/energy overhead (wake-up + shutdown)
/// around every transfer burst and exposes the power states of
/// [`PowerState`].
///
/// Both the analytic buffering model (`memstream-core`) and the
/// discrete-event simulator (`memstream-sim`) are generic over this trait,
/// which is what lets the paper's MEMS-vs-disk comparison — and any future
/// device, mechanical or solid-state — run through the exact same code
/// path. For a MEMS store the overhead is a probe seek; for a disk it is
/// the spin-up; for a flash part it is the exit from deep power-down.
///
/// The trait is object-safe; heterogeneous device collections can be stored
/// as `Vec<Box<dyn EnergyModelled>>`. `Debug` is a supertrait so that
/// models holding `&dyn EnergyModelled` can themselves derive `Debug`.
pub trait EnergyModelled: std::fmt::Debug {
    /// Human-readable device name for reports.
    fn name(&self) -> &str;

    /// Sustained media transfer rate `rm` (Fig. 1a).
    fn media_rate(&self) -> BitRate;

    /// Power drawn in the given state.
    fn power(&self, state: PowerState) -> Power;

    /// Time spent seeking before a refill (`tsk`).
    fn seek_time(&self) -> Duration;

    /// Time spent shutting down after a refill (`tsd`).
    fn shutdown_time(&self) -> Duration;

    /// Total per-cycle overhead time `toh = tsk + tsd` (Eq. 1).
    fn overhead_time(&self) -> Duration {
        self.seek_time() + self.shutdown_time()
    }

    /// Total per-cycle overhead energy `Eoh = Esk + Esd` (Eq. 1).
    ///
    /// `Esk = tsk · P(Seek)` and `Esd = tsd · P(Shutdown)`.
    fn overhead_energy(&self) -> Energy {
        self.power(PowerState::Seek) * self.seek_time()
            + self.power(PowerState::Shutdown) * self.shutdown_time()
    }

    /// Mean overhead power `Poh = Eoh / toh` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the overhead time is zero (an overhead-free device has no
    /// well-defined overhead power; such devices never benefit from
    /// buffering in the first place).
    fn overhead_power(&self) -> Power {
        let toh = self.overhead_time();
        assert!(
            toh > Duration::ZERO,
            "overhead power undefined for a device with zero overhead time"
        );
        self.overhead_energy() / toh
    }
}

/// Marker: an [`EnergyModelled`] device whose overhead comes from a moving
/// medium (probe seek, disk spin-up). The original closed world of the
/// paper — [`crate::MemsDevice`] and [`crate::DiskDevice`] implement it,
/// solid-state devices do not.
pub trait MechanicalDevice: EnergyModelled {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal hand-rolled device used to exercise the default methods.
    #[derive(Debug)]
    struct Toy;

    impl EnergyModelled for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn media_rate(&self) -> BitRate {
            BitRate::from_mbps(10.0)
        }
        fn power(&self, state: PowerState) -> Power {
            match state {
                PowerState::Standby => Power::from_milliwatts(1.0),
                PowerState::Seek => Power::from_milliwatts(100.0),
                PowerState::ReadWrite => Power::from_milliwatts(50.0),
                PowerState::Idle => Power::from_milliwatts(20.0),
                PowerState::Shutdown => Power::from_milliwatts(100.0),
            }
        }
        fn seek_time(&self) -> Duration {
            Duration::from_millis(4.0)
        }
        fn shutdown_time(&self) -> Duration {
            Duration::from_millis(1.0)
        }
    }

    #[test]
    fn default_overhead_derivations() {
        let toy = Toy;
        assert!((toy.overhead_time().millis() - 5.0).abs() < 1e-12);
        // Eoh = 4ms*100mW + 1ms*100mW = 0.5 mJ.
        assert!((toy.overhead_energy().millijoules() - 0.5).abs() < 1e-12);
        // Poh = 0.5 mJ / 5 ms = 100 mW.
        assert!((toy.overhead_power().milliwatts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn state_display_names() {
        assert_eq!(PowerState::Standby.to_string(), "standby");
        assert_eq!(PowerState::ReadWrite.to_string(), "read/write");
        assert_eq!(PowerState::ALL.len(), 5);
    }
}
