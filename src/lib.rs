//! Umbrella crate for the `memstream` workspace — a reproduction and
//! extension of Khatib & Abelmann, *"Buffering Implications for the Design
//! Space of Streaming MEMS Storage"* (DATE 2011).
//!
//! Each member crate is re-exported under its short name so downstream
//! users can depend on one package:
//!
//! * [`units`] — strongly typed quantities (bits, joules, watts, years).
//! * [`device`] — MEMS / disk / DRAM device models (Table I).
//! * [`media`] — sector formats, ECC and layout (Eqs. (2)–(4) inputs).
//! * [`workload`] — the §IV-A streaming workload and seeded traces.
//! * [`core`] — the analytic models and buffer dimensioner (Eqs. (1)–(6)).
//! * [`sim`] — the discrete-event simulator cross-checking the models.
//! * [`grid`] — the parallel scenario-grid exploration engine.
//! * [`refine`] — the adaptive frontier-knee refinement loop over it.
//!
//! The repo-root `tests/` and `examples/` directories belong to this
//! package, so `cargo test` and `cargo run --example quickstart` work from
//! a fresh checkout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use memstream_core as core;
pub use memstream_device as device;
pub use memstream_grid as grid;
pub use memstream_media as media;
pub use memstream_refine as refine;
pub use memstream_sim as sim;
pub use memstream_units as units;
pub use memstream_workload as workload;
