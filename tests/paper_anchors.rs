//! Paper-anchor tests: every number the paper states in prose, checked
//! against the model. Each test cites the section it reproduces; the
//! tolerances and known deviations are documented in `EXPERIMENTS.md`.

use memstream_core::{BestEffortPolicy, DesignGoal, EnergyModel, SystemModel};
use memstream_device::{DiskDevice, MemsDevice};
use memstream_units::{BitRate, DataSize, Ratio, Years};
use memstream_workload::Workload;

fn system(kbps: f64) -> SystemModel {
    SystemModel::paper_default(BitRate::from_kbps(kbps))
}

// --- §III-A.1: break-even buffers -----------------------------------------

#[test]
fn n1_mems_break_even_range_is_0_07_to_9_kib() {
    // "For streaming rates in the range 32-4096 kbps, the break-even buffer
    // ranges from 0.07 kB to 8.87 kB."
    let low = system(32.0).break_even_buffer().unwrap().kibibytes();
    let high = system(4096.0).break_even_buffer().unwrap().kibibytes();
    assert!((0.06..=0.08).contains(&low), "low end {low} kB");
    assert!((8.4..=9.7).contains(&high), "high end {high} kB");
}

#[test]
fn n1_disk_break_even_range_is_0_08_to_10_mib() {
    // "In contrast, the break-even buffer of a 1.8-inch disk drive for the
    // same streaming range is 0.08-9.29 MB."
    let disk = DiskDevice::calibrated_1p8_inch();
    let at = |kbps: f64| {
        let w = Workload::paper_default(BitRate::from_kbps(kbps));
        EnergyModel::new(&disk, w, BestEffortPolicy::AtReadWrite, None)
            .break_even_buffer()
            .unwrap()
            .mebibytes()
    };
    let low = at(32.0);
    let high = at(4096.0);
    assert!((0.05..=0.12).contains(&low), "low end {low} MB");
    assert!((7.0..=11.0).contains(&high), "high end {high} MB");
}

#[test]
fn n1_three_orders_of_magnitude_between_devices() {
    // "a difference of three orders of magnitude".
    let mems = system(1024.0).break_even_buffer().unwrap();
    let disk = DiskDevice::calibrated_1p8_inch();
    let w = Workload::paper_default(BitRate::from_kbps(1024.0));
    let disk_be = EnergyModel::new(&disk, w, BestEffortPolicy::AtReadWrite, None)
        .break_even_buffer()
        .unwrap();
    let orders = (disk_be / mems).log10();
    assert!(
        (2.5..=3.5).contains(&orders),
        "{orders} orders of magnitude"
    );
}

// --- §III-B: capacity ------------------------------------------------------

#[test]
fn n2_capacity_tops_at_88_percent_about_106_of_120_gb() {
    // "the capacity utilisation of our MEMS storage device tops with 88%,
    // approximately 106 GB out of 120 GB".
    let m = system(1024.0);
    let big = DataSize::from_kibibytes(512.0);
    let u = m.utilization(big);
    assert!((88.0..89.0).contains(&u.percent()), "utilisation {u}");
    let eff = m.capacity_model().effective_capacity(big);
    assert!(
        (105.0..107.0).contains(&eff.gigabytes()),
        "{} GB",
        eff.gigabytes()
    );
}

#[test]
fn fig2a_capacity_saturates_beyond_7_kib() {
    // "Beyond 7 kB the capacity increase saturates."
    let m = system(1024.0);
    let at_7 = m.utilization(DataSize::from_kibibytes(7.0)).fraction();
    let at_45 = m.utilization(DataSize::from_kibibytes(45.0)).fraction();
    let sup = m.capacity_model().utilization_supremum().fraction();
    assert!(at_7 / sup > 0.93, "7 KiB is {at_7} of supremum {sup}");
    assert!(at_45 / sup > 0.98);
}

// --- Fig. 2a: energy -------------------------------------------------------

#[test]
fn fig2a_always_on_energy_is_about_120_nj_per_bit() {
    // The y-axis ceiling of Fig. 2a at 1024 kbps.
    let nj = system(1024.0)
        .energy_model()
        .always_on_per_bit()
        .nanojoules_per_bit();
    assert!((115.0..125.0).contains(&nj), "{nj} nJ/b");
}

#[test]
fn fig2a_energy_shows_diminishing_returns_beyond_20_kib() {
    // "The figure shows diminishing returns as the buffer increases beyond
    // 20 kB."
    let m = system(1024.0);
    let e = |kib: f64| {
        m.per_bit_energy(DataSize::from_kibibytes(kib))
            .unwrap()
            .nanojoules_per_bit()
    };
    let drop_first = e(2.5) - e(20.0);
    let drop_second = e(20.0) - e(45.0);
    assert!(
        drop_first > 4.0 * drop_second,
        "first 20 kB saves {drop_first} nJ/b, next 25 kB only {drop_second}"
    );
}

#[test]
fn fig2a_dram_energy_is_present_but_negligible() {
    // "The DRAM energy is present, but is negligible."
    let m = system(1024.0);
    let b = DataSize::from_kibibytes(20.0);
    let with = m.per_bit_energy(b).unwrap().joules_per_bit();
    let without = m.without_dram().per_bit_energy(b).unwrap().joules_per_bit();
    assert!(with > without);
    assert!((with - without) / without < 0.02);
}

// --- Fig. 2b: lifetime -----------------------------------------------------

#[test]
fn fig2b_springs_limit_device_to_about_4_years() {
    // "the springs at 1e8 limit the device lifetime to just 4 years" (at
    // the top of the plotted 0-45 kB range).
    let m = system(1024.0);
    let l = m.springs_lifetime(DataSize::from_kibibytes(45.0));
    assert!((3.0..4.6).contains(&l.get()), "{l}");
}

#[test]
fn fig2b_90_kib_buys_seven_years() {
    // "about 90 kB is required to attain a 7-year lifetime".
    let m = system(1024.0);
    let b = m.lifetime_model().min_buffer_for_springs(Years::new(7.0));
    assert!(
        (85.0..100.0).contains(&b.kibibytes()),
        "{} KiB",
        b.kibibytes()
    );
}

#[test]
fn fig2b_probes_lifetime_saturates_near_20_years() {
    // The probes curve of Fig. 2b tops out around 20 years.
    let m = system(1024.0);
    let l = m.probes_lifetime(DataSize::from_kibibytes(45.0));
    assert!((17.0..22.0).contains(&l.get()), "{l}");
}

#[test]
fn fig2b_large_buffer_has_virtually_no_influence_on_probes() {
    // "a large buffer size has virtually no influence on probes lifetime".
    let m = system(1024.0);
    let l45 = m.probes_lifetime(DataSize::from_kibibytes(45.0)).get();
    let l450 = m.probes_lifetime(DataSize::from_kibibytes(450.0)).get();
    assert!((l450 - l45) / l45 < 0.02);
}

// --- Fig. 3: design-space exploration --------------------------------------

#[test]
fn fig3a_80_percent_goal_has_an_energy_feasibility_limit() {
    // "At slightly above 1000 kbps the 80% energy-efficiency reaches its
    // limit". Our calibration places it at ~1.3 Mbps (see EXPERIMENTS.md).
    assert!(system(1024.0).dimension(&DesignGoal::fig3a()).is_ok());
    assert!(system(1536.0).dimension(&DesignGoal::fig3a()).is_err());
}

#[test]
fn fig3b_70_percent_goal_extends_the_feasible_range() {
    // "Compared to the previous goal, this goal is feasible for more
    // streaming rates."
    let goal = DesignGoal::fig3b();
    assert!(system(1536.0).dimension(&goal).is_ok());
    assert!(system(2048.0).dimension(&goal).is_ok());
}

#[test]
fn fig3b_buffer_drops_orders_of_magnitude_versus_fig3a() {
    // "the buffer size drops three orders of magnitude compared to
    // Figure 3a." The gap diverges as the rate approaches the 80%
    // feasibility edge (the Fig. 3a curve shoots off the top of the
    // figure); we sample close to the edge of the device-only model
    // (~1.27 Mbps) and check the gap is already well over an order of
    // magnitude and still growing.
    let near = system(1270.0).without_dram();
    let nearer = system(1272.0).without_dram();
    let orders_near = (near.dimension(&DesignGoal::fig3a()).unwrap().buffer()
        / near.dimension(&DesignGoal::fig3b()).unwrap().buffer())
    .log10();
    let orders_nearer = (nearer.dimension(&DesignGoal::fig3a()).unwrap().buffer()
        / nearer.dimension(&DesignGoal::fig3b()).unwrap().buffer())
    .log10();
    assert!(orders_near > 1.4, "only {orders_near} orders of magnitude");
    assert!(
        orders_nearer > orders_near,
        "gap should diverge toward the edge"
    );
}

#[test]
fn fig3b_probes_set_a_hard_rate_limit_at_dpb_100() {
    // The vertical dashed line of Fig. 3b: a rate beyond which L = 7 is
    // unreachable regardless of buffer (paper: ~1500 kbps; ours: ~2.9 Mbps
    // — see EXPERIMENTS.md for the convention gap).
    let goal = DesignGoal::fig3b();
    assert!(system(4096.0).dimension(&goal).is_err());
}

#[test]
fn fig3c_upgraded_device_is_feasible_across_the_whole_range() {
    // Dpb = 200 + silicon springs (1e12): goal (70%, 88%, 7) feasible for
    // 32-4096 kbps, dominated by capacity then energy.
    let upgraded = MemsDevice::table1()
        .with_probe_write_cycles(200.0)
        .with_spring_duty_cycles(1e12);
    let goal = DesignGoal::fig3b();
    for kbps in [32.0, 128.0, 1024.0, 2048.0, 4096.0] {
        let m = system(kbps).with_device(upgraded.clone());
        let plan = m.dimension(&goal);
        assert!(plan.is_ok(), "infeasible at {kbps} kbps: {plan:?}");
    }
}

#[test]
fn conclusion_trading_10_percent_saving_shrinks_buffer_three_orders() {
    // The abstract's headline: "trading off 10% of the optimal energy
    // saving of a MEMS device reduces its buffer capacity by up to three
    // orders of magnitude." Compare the energy-only buffers for E = 80%
    // vs E = 70% near the 80% limit of the device-only model (~1.27 Mbps);
    // the ratio passes 2 orders there and diverges at the edge itself.
    let m = system(1270.0).without_dram();
    let e80 = m
        .energy_model()
        .min_buffer_for_saving(Ratio::from_percent(80.0))
        .unwrap();
    let e70 = m
        .energy_model()
        .min_buffer_for_saving(Ratio::from_percent(70.0))
        .unwrap();
    let orders = (e80 / e70).log10();
    assert!(orders > 2.0, "only {orders} orders of magnitude");
}
