//! Experiment V1: the discrete-event simulator agrees with the analytic
//! closed forms (Eqs. (1), (5), (6)) term by term.
//!
//! The paper's equations assume an idealised steady state; the simulator
//! executes the actual state machine. Agreement within ~1-2 % (edge effects
//! of the first and last partial cycle) is the workspace's evidence that
//! the transcribed equations are the ones the architecture obeys.

use memstream_core::{BestEffortPolicy, EnergyModel, SystemModel};
use memstream_device::{DramModel, MemsDevice, PowerState};
use memstream_sim::{BestEffortMode, SimConfig, StreamingSimulation};
use memstream_units::{BitRate, DataSize, Duration};
use memstream_workload::Workload;

fn simulate(kbps: f64, buffer_kib: f64, seconds: f64) -> memstream_sim::SimReport {
    let config = SimConfig::cbr(
        MemsDevice::table1(),
        Workload::paper_default(BitRate::from_kbps(kbps)),
        DataSize::from_kibibytes(buffer_kib),
    );
    StreamingSimulation::new(config)
        .unwrap()
        .run(Duration::from_seconds(seconds))
}

fn analytic(kbps: f64) -> SystemModel {
    SystemModel::paper_default(BitRate::from_kbps(kbps)).without_dram()
}

/// Eq. (1) normalises by the *buffered* bits per cycle (`B`), whereas the
/// stream consumes `Tm*rs = B*rm/(rm-rs)` per cycle (~1% more at 1024
/// kbps). Normalise the simulator's energy the same way for comparison.
fn sim_energy_per_buffered_bit(report: &memstream_sim::SimReport, buffer: DataSize) -> f64 {
    report.total_energy().joules() / (buffer.bits() * report.cycles as f64)
}

#[test]
fn per_bit_energy_matches_equation_one_within_one_percent() {
    for (kbps, kib) in [(1024.0, 20.0), (512.0, 10.0), (2048.0, 40.0), (128.0, 4.0)] {
        let report = simulate(kbps, kib, 600.0);
        let model = analytic(kbps)
            .per_bit_energy(DataSize::from_kibibytes(kib))
            .unwrap();
        let sim = sim_energy_per_buffered_bit(&report, DataSize::from_kibibytes(kib));
        let rel = (sim - model.joules_per_bit()).abs() / model.joules_per_bit();
        assert!(
            rel < 0.01,
            "{kbps} kbps / {kib} KiB: sim {sim} vs model {model} ({rel:.4} rel)"
        );
    }
}

#[test]
fn state_time_fractions_match_the_cycle_decomposition() {
    let kbps = 1024.0;
    let kib = 20.0;
    let report = simulate(kbps, kib, 600.0);
    let model = analytic(kbps);
    let cycle = memstream_core::RefillCycle::compute(
        model.device(),
        model.workload(),
        DataSize::from_kibibytes(kib),
        BestEffortPolicy::AtReadWrite,
    )
    .unwrap();

    let tm = cycle.period().seconds();
    // Read/write share = (tRW + t_be) / Tm (sim charges both at RW power).
    let expected_rw = (cycle.read_write_time().seconds() + cycle.best_effort_time().seconds()) / tm;
    let got_rw = report.time_fraction(PowerState::ReadWrite);
    assert!(
        (got_rw - expected_rw).abs() < 0.005,
        "rw {got_rw} vs {expected_rw}"
    );

    let expected_sb = cycle.standby_time().seconds() / tm;
    let got_sb = report.time_fraction(PowerState::Standby);
    assert!(
        (got_sb - expected_sb).abs() < 0.01,
        "standby {got_sb} vs {expected_sb}"
    );
}

#[test]
fn cycle_count_matches_tm() {
    let report = simulate(1024.0, 20.0, 600.0);
    let model = analytic(1024.0);
    let cycle = memstream_core::RefillCycle::compute(
        model.device(),
        model.workload(),
        DataSize::from_kibibytes(20.0),
        BestEffortPolicy::AtReadWrite,
    )
    .unwrap();
    let expected = 600.0 / cycle.period().seconds();
    let got = report.cycles as f64;
    assert!(
        (got - expected).abs() / expected < 0.01,
        "{got} vs {expected}"
    );
}

#[test]
fn projected_springs_lifetime_matches_equation_five() {
    let kib = 20.0;
    let report = simulate(1024.0, kib, 600.0);
    let model = analytic(1024.0);
    let t_year = model.workload().playback_seconds_per_year();
    let sim_years = report.projected_springs_lifetime(t_year);
    let eq5 = model.springs_lifetime(DataSize::from_kibibytes(kib));
    let rel = (sim_years.get() - eq5.get()).abs() / eq5.get();
    assert!(rel < 0.02, "sim {sim_years} vs Eq.(5) {eq5}");
}

#[test]
fn projected_probes_lifetime_matches_equation_six() {
    let kib = 20.0;
    let report = simulate(1024.0, kib, 600.0);
    let model = analytic(1024.0);
    let t_year = model.workload().playback_seconds_per_year();
    let sim_years = report.projected_probes_lifetime(t_year);
    let eq6 = model.probes_lifetime(DataSize::from_kibibytes(kib));
    let rel = (sim_years.get() - eq6.get()).abs() / eq6.get();
    assert!(rel < 0.02, "sim {sim_years} vs Eq.(6) {eq6}");
}

#[test]
fn measured_saving_matches_the_model() {
    let kib = 20.0;
    let report = simulate(1024.0, kib, 600.0);
    let model = analytic(1024.0);
    let baseline = model.energy_model().always_on_per_bit().joules_per_bit();
    let sim_saving =
        1.0 - sim_energy_per_buffered_bit(&report, DataSize::from_kibibytes(kib)) / baseline;
    let model_saving = model.saving(DataSize::from_kibibytes(kib)).unwrap();
    assert!(
        (sim_saving - model_saving).abs() < 0.01,
        "sim {sim_saving} vs model {model_saving}"
    );
}

#[test]
fn dram_share_matches_the_model_term() {
    let kib = 20.0;
    let kbps = 1024.0;
    let config = SimConfig::cbr(
        MemsDevice::table1(),
        Workload::paper_default(BitRate::from_kbps(kbps)),
        DataSize::from_kibibytes(kib),
    )
    .with_dram(DramModel::micron_ddr_mobile());
    let report = StreamingSimulation::new(config)
        .unwrap()
        .run(Duration::from_seconds(600.0));

    let with = SystemModel::paper_default(BitRate::from_kbps(kbps));
    let model_dram = with
        .per_bit_energy(DataSize::from_kibibytes(kib))
        .unwrap()
        .joules_per_bit()
        - with
            .without_dram()
            .per_bit_energy(DataSize::from_kibibytes(kib))
            .unwrap()
            .joules_per_bit();
    let sim_dram = report.meter.dram_energy().joules()
        / (DataSize::from_kibibytes(kib).bits() * report.cycles as f64);
    let rel = (sim_dram - model_dram).abs() / model_dram;
    assert!(
        rel < 0.05,
        "sim dram {sim_dram} vs model {model_dram} ({rel:.3})"
    );
}

#[test]
fn poisson_best_effort_converges_to_the_reservation() {
    // The Poisson realisation should consume roughly the reserved 5% of
    // device time in the long run (loose tolerance: it is stochastic).
    let config = SimConfig::cbr(
        MemsDevice::table1(),
        Workload::paper_default(BitRate::from_kbps(1024.0)),
        DataSize::from_kibibytes(64.0),
    )
    .with_best_effort(BestEffortMode::Poisson { seed: 42 });
    let report = StreamingSimulation::new(config)
        .unwrap()
        .run(Duration::from_seconds(1200.0));
    // Compare total energy against the Reserved-mode run: the stochastic
    // service should land in the same ballpark.
    let reserved = simulate(1024.0, 64.0, 1200.0);
    let rel = (report.total_energy().joules() - reserved.total_energy().joules()).abs()
        / reserved.total_energy().joules();
    assert!(rel < 0.25, "poisson vs reserved energy differ by {rel:.3}");
    assert_eq!(report.underruns, 0);
}

#[test]
fn disk_model_also_matches_equation_one() {
    // The same energy equation drives the disk comparison; check the sim
    // against the analytic model for the generic device path using the
    // MEMS device at a second operating point as a stand-in (the sim is
    // MEMS-typed; the analytic model is generic).
    let report = simulate(256.0, 8.0, 600.0);
    let d = MemsDevice::table1();
    let w = Workload::paper_default(BitRate::from_kbps(256.0));
    let model = EnergyModel::new(&d, w, BestEffortPolicy::AtReadWrite, None);
    let expected = model.per_bit_energy(DataSize::from_kibibytes(8.0)).unwrap();
    let got = sim_energy_per_buffered_bit(&report, DataSize::from_kibibytes(8.0));
    let rel = (got - expected.joules_per_bit()).abs() / expected.joules_per_bit();
    assert!(rel < 0.01, "sim {got} vs model {expected}");
}

#[test]
fn flash_sim_wear_matches_the_analytic_erase_channel() {
    // The sim's erase-block sink charges the same write amplification
    // waf(B) = waf_floor + block/B as the analytic EraseBudget channel,
    // so the projected lifetime must agree with the closed form.
    use memstream_core::{CapabilityModel, LifetimeModel};
    use memstream_device::FlashDevice;

    let flash = FlashDevice::mobile_mlc();
    let workload = Workload::paper_default(BitRate::from_kbps(1024.0));
    let buffer = DataSize::from_kibibytes(16.0);
    let report = StreamingSimulation::new(SimConfig::cbr(flash.clone(), workload, buffer))
        .unwrap()
        .run(Duration::from_seconds(600.0));

    let model =
        CapabilityModel::new(&flash, workload, None, BestEffortPolicy::AtReadWrite).unwrap();
    let analytic = model.device_lifetime(buffer);
    let t_year = workload.playback_seconds_per_year();
    let sim_years = report.projected_device_lifetime(t_year);
    let rel = (sim_years.get() - analytic.get()).abs() / analytic.get();
    assert!(
        rel < 0.03,
        "flash sim lifetime {sim_years} vs analytic erase channel {analytic} (rel {rel:.4})"
    );
    // And the analytic side agrees with a by-hand Eq.(erase) transcription.
    let lifetime = LifetimeModel::new(
        &flash,
        workload,
        memstream_core::CapacityModel::constant(
            memstream_units::Ratio::from_fraction(flash.fixed_utilization()),
            flash.capacity(),
        ),
    );
    let waf = flash.write_amplification(buffer);
    let by_hand = flash.write_budget_bits()
        / (workload.write_fraction().fraction() * workload.bits_per_year() * waf);
    assert!((lifetime.device_lifetime(buffer).get() - by_hand).abs() < by_hand * 1e-12);
}
