//! Integration tests for the extensions beyond the paper (DESIGN.md §6):
//! stream mixes, wear imbalance, duty-cycle comparison, format exploration
//! and parameter sensitivity — exercised across crate boundaries.

use memstream_core::{
    buffer_sensitivity, duty_cycle_lifetime, min_buffer_for_duty_cycles, DesignGoal, SystemModel,
};
use memstream_device::{DiskDevice, MemsDevice};
use memstream_media::{stripe_width_sweep, EccPolicy, SectorFormat};
use memstream_sim::{SimConfig, StreamingSimulation};
use memstream_units::{BitRate, DataSize, Duration, Ratio, Years};
use memstream_workload::{PlaybackCalendar, StreamMix, StreamSpec, Workload};

#[test]
fn stream_mix_feeds_the_dimensioner() {
    // Play one program while recording another; the aggregate stream runs
    // through the unchanged single-stream machinery.
    let mix = StreamMix::new(vec![
        StreamSpec::read_only(BitRate::from_kbps(800.0)).unwrap(),
        StreamSpec::new(BitRate::from_kbps(224.0), Ratio::ONE).unwrap(),
    ])
    .unwrap();
    let agg = mix.aggregate();
    let workload = Workload::new(
        agg,
        PlaybackCalendar::paper_default(),
        Ratio::from_percent(5.0),
    )
    .unwrap();
    let device = MemsDevice::table1();
    let format = SectorFormat::for_device(&device);
    let model = SystemModel::new(device, workload, format, None, Default::default());
    let plan = model.dimension(&DesignGoal::fig3b()).unwrap();
    assert!(plan.buffer() > DataSize::ZERO);
    // The mix writes 224/1024 of the traffic; probes wear slower than the
    // paper's 40%-write default at the same total rate.
    let default_model = SystemModel::paper_default(BitRate::from_kbps(1024.0)).without_dram();
    let b = DataSize::from_kibibytes(20.0);
    assert!(model.probes_lifetime(b).get() > default_model.probes_lifetime(b).get());
}

#[test]
fn sim_with_mix_matches_model_with_mix() {
    let mix = StreamMix::new(vec![
        StreamSpec::read_only(BitRate::from_kbps(614.4)).unwrap(),
        StreamSpec::new(BitRate::from_kbps(409.6), Ratio::ONE).unwrap(),
    ])
    .unwrap();
    let workload = Workload::new(
        mix.aggregate(),
        PlaybackCalendar::paper_default(),
        Ratio::from_percent(5.0),
    )
    .unwrap();
    // The aggregate equals the paper's 1024 kbps / 40% workload, so the
    // cross-validated closed forms apply verbatim.
    let report = StreamingSimulation::new(SimConfig::cbr(
        MemsDevice::table1(),
        workload,
        DataSize::from_kibibytes(20.0),
    ))
    .unwrap()
    .run(Duration::from_seconds(300.0));
    let model = SystemModel::paper_default(BitRate::from_kbps(1024.0)).without_dram();
    let sim = report.total_energy().joules()
        / (DataSize::from_kibibytes(20.0).bits() * report.cycles as f64);
    let ana = model
        .per_bit_energy(DataSize::from_kibibytes(20.0))
        .unwrap()
        .joules_per_bit();
    assert!((sim - ana).abs() / ana < 0.01);
}

#[test]
fn wear_skew_degrades_lifetime_but_not_energy() {
    let run = |skew: f64| {
        StreamingSimulation::new(
            SimConfig::cbr(
                MemsDevice::table1(),
                Workload::paper_default(BitRate::from_kbps(1024.0)),
                DataSize::from_kibibytes(20.0),
            )
            .with_probe_skew(skew),
        )
        .unwrap()
        .run(Duration::from_seconds(120.0))
    };
    let balanced = run(0.0);
    let skewed = run(2.0);
    // Energy identical (wear distribution is orthogonal to power):
    assert_eq!(
        balanced.total_energy().joules(),
        skewed.total_energy().joules()
    );
    // Worst-probe lifetime halves at skew 2 (hottest probe gets 2x mean):
    let t = 10_512_000.0;
    let ratio =
        skewed.projected_probes_lifetime(t).get() / skewed.projected_probes_lifetime_worst(t).get();
    assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
}

#[test]
fn duty_cycle_comparison_reproduces_the_rating_argument() {
    // §III-C.1: the MEMS springs need 10^8 cycles to match the disk's
    // lifetime because the MEMS buffer is ~1000x smaller.
    let disk = DiskDevice::calibrated_1p8_inch();
    let mems = MemsDevice::table1();
    let w = Workload::paper_default(BitRate::from_kbps(1024.0));

    // Size each device's buffer for a 7-year cycle-rated lifetime...
    let disk_buffer = min_buffer_for_duty_cycles(disk.start_stop_cycles(), Years::new(7.0), &w);
    let mems_buffer = min_buffer_for_duty_cycles(mems.spring_duty_cycles(), Years::new(7.0), &w);
    // ...the buffers differ by exactly the rating ratio:
    let ratio = disk_buffer / mems_buffer;
    assert!((ratio - 1000.0).abs() < 1e-6, "buffer ratio {ratio}");
    // ...and verify the forward direction round-trips.
    assert!((duty_cycle_lifetime(1e5, disk_buffer, &w).get() - 7.0).abs() < 1e-9);
    assert!((duty_cycle_lifetime(1e8, mems_buffer, &w).get() - 7.0).abs() < 1e-9);
}

#[test]
fn format_exploration_is_consistent_with_the_capacity_model() {
    // The K = 1024 row of the stripe sweep must agree with the paper
    // format used by the capacity model.
    let sweep = stripe_width_sweep(
        [1024],
        DataSize::from_kibibytes(8.0),
        EccPolicy::MEMS,
        3,
        Ratio::from_percent(88.0),
    )
    .unwrap();
    let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));
    assert_eq!(
        sweep[0].utilization,
        model.utilization(DataSize::from_kibibytes(8.0))
    );
    let via_sweep = sweep[0].min_user_for_target.unwrap();
    let via_model = model
        .capacity_model()
        .min_buffer_for_utilization(Ratio::from_percent(88.0))
        .unwrap();
    assert_eq!(via_sweep.bits(), via_model.bits());
}

#[test]
fn sensitivity_identifies_the_dominant_requirement() {
    // The parameter with |elasticity| ~ 1 changes with the dominating
    // region, mirroring the Fig. 3 region bar.
    let springs_point = SystemModel::paper_default(BitRate::from_kbps(1024.0));
    let rows = buffer_sensitivity(&springs_point, &DesignGoal::fig3b(), 0.05);
    let dsp = rows
        .iter()
        .find(|r| r.parameter == "spring duty cycles")
        .and_then(|r| r.elasticity)
        .unwrap();
    assert!((dsp + 1.0).abs() < 0.02);

    // After the silicon-spring upgrade the same operating point is
    // capacity-dominated and Dsp is slack.
    let upgraded = springs_point.with_device(
        MemsDevice::table1()
            .with_probe_write_cycles(200.0)
            .with_spring_duty_cycles(1e12),
    );
    let rows = buffer_sensitivity(&upgraded, &DesignGoal::fig3b(), 0.05);
    let dsp = rows
        .iter()
        .find(|r| r.parameter == "spring duty cycles")
        .and_then(|r| r.elasticity)
        .unwrap();
    assert!(dsp.abs() < 0.02);
}

#[test]
fn session_runs_project_the_same_lifetimes_as_continuous_runs() {
    let continuous = StreamingSimulation::new(SimConfig::cbr(
        MemsDevice::table1(),
        Workload::paper_default(BitRate::from_kbps(1024.0)),
        DataSize::from_kibibytes(20.0),
    ))
    .unwrap()
    .run(Duration::from_seconds(400.0));
    let sessions = StreamingSimulation::new(SimConfig::cbr(
        MemsDevice::table1(),
        Workload::paper_default(BitRate::from_kbps(1024.0)),
        DataSize::from_kibibytes(20.0),
    ))
    .unwrap()
    .run_sessions(8, Duration::from_seconds(50.0));
    let t = 10_512_000.0;
    let a = continuous.projected_springs_lifetime(t).get();
    let b = sessions.projected_springs_lifetime(t).get();
    assert!((a - b).abs() / a < 0.01, "continuous {a} vs sessions {b}");
}
