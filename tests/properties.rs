//! Cross-crate property-based tests: invariants of the full model stack
//! under randomly drawn operating points and goals.

use proptest::prelude::*;

use memstream_core::{BestEffortPolicy, DesignGoal, RefillCycle, SystemModel};
use memstream_units::{BitRate, DataSize, Ratio, Years};

fn system(kbps: f64) -> SystemModel {
    SystemModel::paper_default(BitRate::from_kbps(kbps))
}

proptest! {
    // Every feasible plan satisfies all three requirements it was built
    // from — over random rates and random (feasible-leaning) goals.
    #[test]
    fn plans_satisfy_their_goals(
        kbps in 32.0..1400.0f64,
        saving_pct in 10.0..70.0f64,
        capacity_pct in 10.0..88.0f64,
        years in 0.5..7.0f64,
    ) {
        let m = system(kbps);
        let goal = DesignGoal::new()
            .energy_saving(Ratio::from_percent(saving_pct))
            .capacity_utilization(Ratio::from_percent(capacity_pct))
            .lifetime(Years::new(years));
        if let Ok(plan) = m.dimension(&goal) {
            let b = plan.buffer();
            prop_assert!(m.utilization(b).percent() >= capacity_pct - 1e-9);
            prop_assert!(m.saving(b).unwrap() * 100.0 >= saving_pct - 1e-6);
            prop_assert!(m.device_lifetime(b).get() >= years - 1e-6);
        }
    }

    // The break-even buffer grows monotonically with the stream rate
    // (SIII-A.1's table is monotone).
    #[test]
    fn break_even_monotone_in_rate(kbps in 32.0..4000.0f64) {
        let low = system(kbps).break_even_buffer().unwrap();
        let high = system(kbps * 1.02).break_even_buffer().unwrap();
        prop_assert!(high >= low);
    }

    // Tightening any single goal component never shrinks the buffer.
    #[test]
    fn stricter_goals_need_no_less_buffer(
        kbps in 64.0..1200.0f64,
        saving_pct in 20.0..65.0f64,
        years in 1.0..6.0f64,
    ) {
        let m = system(kbps);
        let base = DesignGoal::new()
            .energy_saving(Ratio::from_percent(saving_pct))
            .lifetime(Years::new(years));
        let stricter_e = DesignGoal::new()
            .energy_saving(Ratio::from_percent(saving_pct + 5.0))
            .lifetime(Years::new(years));
        let stricter_l = DesignGoal::new()
            .energy_saving(Ratio::from_percent(saving_pct))
            .lifetime(Years::new(years + 1.0));
        let b = m.dimension(&base).unwrap().buffer();
        if let Ok(pe) = m.dimension(&stricter_e) {
            prop_assert!(pe.buffer() >= b);
        }
        if let Ok(pl) = m.dimension(&stricter_l) {
            prop_assert!(pl.buffer() >= b);
        }
    }

    // The cycle decomposition balances for every workable operating point,
    // and standby time strictly grows with the buffer.
    #[test]
    fn cycle_invariants(kbps in 32.0..4000.0f64, kib in 1.0..500.0f64) {
        let m = system(kbps);
        let b = DataSize::from_kibibytes(kib);
        if let Ok(cycle) = RefillCycle::compute(
            m.device(), m.workload(), b, BestEffortPolicy::AtReadWrite,
        ) {
            let parts = cycle.read_write_time()
                + cycle.overhead_time()
                + cycle.best_effort_time()
                + cycle.standby_time();
            prop_assert!((parts.seconds() - cycle.period().seconds()).abs() < 1e-9);
            let bigger = RefillCycle::compute(
                m.device(), m.workload(), b * 2.0, BestEffortPolicy::AtReadWrite,
            ).unwrap();
            prop_assert!(bigger.standby_time() > cycle.standby_time());
        }
    }

    // Device lifetime is always the componentwise minimum, and the probes
    // ceiling bounds the probes lifetime everywhere.
    #[test]
    fn lifetime_invariants(kbps in 32.0..4000.0f64, kib in 0.5..2000.0f64) {
        let m = system(kbps);
        let b = DataSize::from_kibibytes(kib);
        let springs = m.springs_lifetime(b);
        let probes = m.probes_lifetime(b);
        prop_assert_eq!(m.device_lifetime(b), springs.min(probes));
        prop_assert!(
            probes.get() <= m.lifetime_model().probes_lifetime_ceiling().get() + 1e-9
        );
    }

    // The always-on baseline never beats a well-buffered shutdown cycle:
    // at 20x break-even the saving is strictly positive for any rate.
    #[test]
    fn buffering_always_pays_off_at_twenty_x_break_even(kbps in 32.0..4000.0f64) {
        let m = system(kbps);
        let be = m.break_even_buffer().unwrap();
        prop_assert!(m.saving(be * 20.0).unwrap() > 0.0);
    }

    // Per-bit energy is bounded below by the transfer + standby floor and
    // above by the always-on baseline plus the cycle overhead share.
    #[test]
    fn energy_is_physically_bounded(kbps in 64.0..2048.0f64, kib in 5.0..200.0f64) {
        let m = system(kbps).without_dram();
        let b = DataSize::from_kibibytes(kib);
        if let Ok(e) = m.per_bit_energy(b) {
            prop_assert!(e.joules_per_bit() > 0.0);
            // Never cheaper than the saving supremum allows:
            let floor = m.energy_model().always_on_per_bit().joules_per_bit()
                * (1.0 - m.energy_model().max_saving());
            prop_assert!(e.joules_per_bit() >= floor - 1e-15);
        }
    }
}
