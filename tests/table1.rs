//! Experiment T1: the modelled device and workload reproduce Table I of
//! the paper parameter by parameter.

use memstream_core::SystemModel;
use memstream_device::{EnergyModelled, MemsDevice, PowerState};
use memstream_units::{BitRate, Ratio};
use memstream_workload::Workload;

#[test]
fn probe_array_geometry() {
    let d = MemsDevice::table1();
    // "Probe-array size 64 x 64", "Active probes 1024",
    // "Probe-field area 100 x 100 um^2".
    assert_eq!(d.array().total_probes(), 64 * 64);
    assert_eq!(d.array().active_probes(), 1024);
    assert_eq!(d.array().field_area_um2(), 10_000.0);
}

#[test]
fn capacity_and_rate() {
    let d = MemsDevice::table1();
    // "Capacity 120 GB", "Per-probe data rate 100 kbps".
    assert_eq!(d.capacity().gigabytes(), 120.0);
    assert_eq!(d.per_probe_rate(), BitRate::from_kbps(100.0));
    assert_eq!(d.media_rate(), BitRate::from_mbps(102.4));
}

#[test]
fn timing_parameters() {
    let d = MemsDevice::table1();
    // "Fast/Slow seek time 2 ms", "Shutdown time 1 ms",
    // "I/O overhead time 2 ms".
    assert_eq!(d.seek_time().millis(), 2.0);
    assert_eq!(d.shutdown_time().millis(), 1.0);
    assert_eq!(d.io_overhead_time().millis(), 2.0);
}

#[test]
fn power_parameters() {
    let d = MemsDevice::table1();
    // "Read/Write 316 mW", "Seek 672 mW", "Standby 5 mW", "Idle 120 mW",
    // "Shutdown 672 mW".
    assert_eq!(d.power(PowerState::ReadWrite).milliwatts(), 316.0);
    assert_eq!(d.power(PowerState::Seek).milliwatts(), 672.0);
    assert_eq!(d.power(PowerState::Standby).milliwatts(), 5.0);
    assert_eq!(d.power(PowerState::Idle).milliwatts(), 120.0);
    assert_eq!(d.power(PowerState::Shutdown).milliwatts(), 672.0);
}

#[test]
fn wear_ratings() {
    let d = MemsDevice::table1();
    // "Probe write cycles 100 & 200", "Springs duty cycles 1e8 & 1e12".
    assert_eq!(d.probe_write_cycles(), 100.0);
    assert_eq!(d.with_probe_write_cycles(200.0).probe_write_cycles(), 200.0);
    assert_eq!(d.spring_duty_cycles(), 1e8);
    assert_eq!(d.with_spring_duty_cycles(1e12).spring_duty_cycles(), 1e12);
}

#[test]
fn workload_parameters() {
    // "Hours per day 8", "Writes percentage 40%", "Best-effort fraction 5%",
    // "Stream bit rate 32-4096 kbps".
    let w = Workload::paper_default(BitRate::from_kbps(32.0));
    assert_eq!(w.calendar().hours_per_day(), 8.0);
    assert_eq!(w.write_fraction(), Ratio::from_percent(40.0));
    assert_eq!(w.best_effort_fraction(), Ratio::from_percent(5.0));
    assert_eq!(w.playback_seconds_per_year(), 8.0 * 3600.0 * 365.0);
}

#[test]
fn derived_overheads_match_hand_arithmetic() {
    let d = MemsDevice::table1();
    // toh = 3 ms, Eoh = 2.016 mJ, Poh = 672 mW (all used by Eq. (1)).
    assert!((d.overhead_time().millis() - 3.0).abs() < 1e-12);
    assert!((d.overhead_energy().millijoules() - 2.016).abs() < 1e-12);
    assert!((d.overhead_power().milliwatts() - 672.0).abs() < 1e-9);
}

#[test]
fn system_model_wires_table1_together() {
    let m = SystemModel::paper_default(BitRate::from_kbps(1024.0));
    assert_eq!(m.device().capacity().gigabytes(), 120.0);
    assert_eq!(m.format().stripe_width(), 1024);
    assert!(m.dram().is_some());
}
