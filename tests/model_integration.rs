//! Cross-crate integration tests: plans satisfy the models that produced
//! them, sweeps are internally consistent, and the public API composes.

use memstream_core::{log_spaced_rates, DesignGoal, Requirement, SweepBuilder, SystemModel};
use memstream_device::MemsDevice;
use memstream_units::{BitRate, DataSize, Ratio, Years};

fn system(kbps: f64) -> SystemModel {
    SystemModel::paper_default(BitRate::from_kbps(kbps))
}

#[test]
fn every_feasible_plan_satisfies_its_goal() {
    let goal = DesignGoal::fig3b();
    for rate in log_spaced_rates(32.0, 2000.0, 15) {
        let m = system(rate.kilobits_per_second());
        let Ok(plan) = m.dimension(&goal) else {
            continue;
        };
        let b = plan.buffer();
        assert!(
            m.utilization(b).percent() >= 88.0 - 1e-9,
            "capacity violated at {rate}"
        );
        assert!(
            m.saving(b).unwrap() >= 0.70 - 1e-9,
            "saving violated at {rate}"
        );
        assert!(
            m.device_lifetime(b).get() >= 7.0 - 1e-6,
            "lifetime violated at {rate}"
        );
    }
}

#[test]
fn required_buffer_is_minimal_among_requirements() {
    // Shrinking the planned buffer by 2% must violate the dominant
    // requirement.
    let goal = DesignGoal::fig3b();
    let m = system(1024.0);
    let plan = m.dimension(&goal).unwrap();
    let smaller = plan.buffer() * 0.98;
    let violated = match plan.dominant() {
        Requirement::Capacity => m.utilization(smaller).percent() < 88.0,
        Requirement::Energy => m.saving(smaller).unwrap() < 0.70,
        Requirement::SpringsLifetime => m.springs_lifetime(smaller).get() < 7.0,
        Requirement::ProbesLifetime => m.probes_lifetime(smaller).get() < 7.0,
        // The MEMS system model has no erase-block channel.
        Requirement::EraseLifetime => unreachable!("MEMS plans are never erase-dominated"),
    };
    assert!(
        violated,
        "shrunken buffer still satisfies {}",
        plan.dominant()
    );
}

#[test]
fn region_sequence_over_the_full_range_fig3a() {
    // Fig. 3a reads C ... E ... X left to right.
    let m = system(1024.0);
    let sweep = SweepBuilder::new(&m);
    let points = sweep.rate_sweep(&DesignGoal::fig3a(), log_spaced_rates(32.0, 4096.0, 40));
    let labels: Vec<&str> = points.iter().map(|p| p.region_label()).collect();
    // Deduplicate consecutive labels to get the region sequence.
    let mut seq: Vec<&str> = Vec::new();
    for l in labels {
        if seq.last() != Some(&l) {
            seq.push(l);
        }
    }
    assert_eq!(seq, vec!["C", "E", "X"], "region sequence {seq:?}");
}

#[test]
fn region_sequence_over_the_feasible_range_fig3b() {
    // Fig. 3b reads C ... Lsp (then the probes wall).
    let m = system(1024.0);
    let sweep = SweepBuilder::new(&m);
    let points = sweep.rate_sweep(&DesignGoal::fig3b(), log_spaced_rates(32.0, 2500.0, 30));
    let mut seq: Vec<&str> = Vec::new();
    for p in &points {
        let l = p.region_label();
        if seq.last() != Some(&l) {
            seq.push(l);
        }
    }
    assert_eq!(seq.first(), Some(&"C"));
    assert!(seq.contains(&"Lsp"), "sequence {seq:?}");
}

#[test]
fn required_buffer_grows_with_rate_in_the_springs_region() {
    // Lsp-dictated buffer is linear in rs.
    let goal = DesignGoal::fig3b();
    let b1 = system(800.0).dimension(&goal).unwrap().buffer();
    let b2 = system(1600.0).dimension(&goal).unwrap().buffer();
    let ratio = b2 / b1;
    assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
}

#[test]
fn energy_buffer_separates_from_required_buffer() {
    // Fig. 3b: "a difference of 1 to 2 orders of magnitude between the
    // required buffer and the energy-efficiency buffer."
    let m = system(512.0);
    let plan = m.dimension(&DesignGoal::fig3b()).unwrap();
    let energy_b = m
        .energy_model()
        .min_buffer_for_saving(Ratio::from_percent(70.0))
        .unwrap();
    let orders = (plan.buffer() / energy_b).log10();
    assert!((0.5..2.5).contains(&orders), "{orders} orders");
}

#[test]
fn sweep_points_agree_with_direct_queries() {
    let m = system(1024.0);
    let sweep = SweepBuilder::new(&m);
    let buffers = vec![
        DataSize::from_kibibytes(5.0),
        DataSize::from_kibibytes(20.0),
        DataSize::from_kibibytes(45.0),
    ];
    let points = sweep.buffer_sweep(buffers.clone());
    for (p, b) in points.iter().zip(&buffers) {
        assert_eq!(p.buffer, *b);
        assert_eq!(p.utilization, m.utilization(*b));
        assert_eq!(p.springs_lifetime, m.springs_lifetime(*b));
        assert_eq!(p.probes_lifetime, m.probes_lifetime(*b));
        assert_eq!(p.energy_per_bit.unwrap(), m.per_bit_energy(*b).unwrap());
    }
}

#[test]
fn upgraded_ratings_never_shrink_the_feasible_set() {
    // Fig. 3b -> Fig. 3c: better hardware can only help.
    let goal = DesignGoal::fig3b();
    let upgraded = MemsDevice::table1()
        .with_probe_write_cycles(200.0)
        .with_spring_duty_cycles(1e12);
    for rate in log_spaced_rates(32.0, 4096.0, 20) {
        let base = system(rate.kilobits_per_second());
        let better = base.with_device(upgraded.clone());
        if base.dimension(&goal).is_ok() {
            assert!(
                better.dimension(&goal).is_ok(),
                "upgrade broke feasibility at {rate}"
            );
        }
        if let (Ok(pb), Ok(pu)) = (base.dimension(&goal), better.dimension(&goal)) {
            assert!(pu.buffer() <= pb.buffer() + DataSize::from_bits(1.0));
        }
    }
}

#[test]
fn relaxing_any_target_never_grows_the_buffer() {
    let m = system(1024.0);
    let strict = m.dimension(&DesignGoal::fig3b()).unwrap();

    let relaxed_c = DesignGoal::new()
        .energy_saving(Ratio::from_percent(70.0))
        .capacity_utilization(Ratio::from_percent(85.0))
        .lifetime(Years::new(7.0));
    let relaxed_l = DesignGoal::new()
        .energy_saving(Ratio::from_percent(70.0))
        .capacity_utilization(Ratio::from_percent(88.0))
        .lifetime(Years::new(4.0));
    let relaxed_e = DesignGoal::new()
        .energy_saving(Ratio::from_percent(50.0))
        .capacity_utilization(Ratio::from_percent(88.0))
        .lifetime(Years::new(7.0));

    for relaxed in [relaxed_c, relaxed_l, relaxed_e] {
        let plan = m.dimension(&relaxed).unwrap();
        assert!(
            plan.buffer() <= strict.buffer(),
            "relaxed goal {relaxed} needs more buffer than the strict one"
        );
    }
}

#[test]
fn infeasibility_reports_are_specific() {
    // Each infeasible goal names the right requirement.
    let high_rate = system(4096.0);

    let err = high_rate.dimension(&DesignGoal::fig3a()).unwrap_err();
    assert!(err.to_string().contains("energy"), "{err}");

    let err = high_rate
        .dimension(&DesignGoal::new().capacity_utilization(Ratio::from_percent(95.0)))
        .unwrap_err();
    assert!(err.to_string().contains("capacity"), "{err}");

    let err = high_rate
        .dimension(&DesignGoal::new().lifetime(Years::new(7.0)))
        .unwrap_err();
    assert!(err.to_string().contains("probes"), "{err}");
}

#[test]
fn x_axis_helpers_cover_the_paper_range() {
    let rates = log_spaced_rates(32.0, 4096.0, 50);
    assert_eq!(rates.len(), 50);
    assert!(rates.iter().all(|r| {
        let k = r.kilobits_per_second();
        (31.9..=4096.1).contains(&k)
    }));
}
