//! Quickstart: size the streaming buffer of a MEMS storage device.
//!
//! Models the paper's reference system (Table I device, 8 h/day playback,
//! 40 % writes) at a 1024 kbps stream, asks the three §III questions at a
//! 20 KiB buffer, and then inverts them: what buffer does the mobile-player
//! goal (70 % energy saving, 88 % capacity, 7-year lifetime) require?
//!
//! Run with: `cargo run --example quickstart`

use memstream_core::{DesignGoal, SystemModel};
use memstream_units::{BitRate, DataSize, Ratio, Years};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::paper_default(BitRate::from_kbps(1024.0));

    println!("system under study:\n  {model}\n");

    // Forward direction: properties as functions of the buffer size.
    let buffer = DataSize::from_kibibytes(20.0);
    println!("at a {buffer} buffer:");
    println!("  per-bit energy   {}", model.per_bit_energy(buffer)?);
    println!(
        "  energy saving    {:.1}% (vs. always-on {})",
        model.saving(buffer)? * 100.0,
        model.energy_model().always_on_per_bit()
    );
    println!("  utilisation      {}", model.utilization(buffer));
    println!("  springs lifetime {}", model.springs_lifetime(buffer));
    println!("  probes lifetime  {}", model.probes_lifetime(buffer));
    println!("  device lifetime  {}\n", model.device_lifetime(buffer));

    // The break-even buffer below which shutting down wastes energy.
    println!("break-even buffer: {}\n", model.break_even_buffer()?);

    // Inverse direction: the design question of the paper's §IV-C.
    let goal = DesignGoal::new()
        .energy_saving(Ratio::from_percent(70.0))
        .capacity_utilization(Ratio::from_percent(88.0))
        .lifetime(Years::new(7.0));
    let plan = model.dimension(&goal)?;
    println!("design question: what buffer achieves {goal}?");
    println!(
        "  answer: {} — dictated by {}",
        plan.buffer(),
        plan.dominant()
    );
    for (req, b) in plan.requirements() {
        println!("    {req:<22} needs {b}");
    }
    Ok(())
}
