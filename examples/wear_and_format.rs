//! Wear-balance and format ablations: stress-testing two assumptions the
//! paper makes in passing.
//!
//! 1. Eq. (6) assumes "a perfect balance in writing across all probes".
//!    The simulator can skew the write distribution; this example shows
//!    how quickly the hottest probe erodes the projected lifetime.
//! 2. Eq. (2) fixes the stripe width at 1024 probes and 3 sync bits. The
//!    format explorer sweeps both, showing what each buys or costs.
//!
//! Run with: `cargo run --release --example wear_and_format`

use memstream_device::MemsDevice;
use memstream_media::{stripe_width_sweep, sync_bits_sweep, EccPolicy};
use memstream_sim::{SimConfig, StreamingSimulation};
use memstream_units::{BitRate, DataSize, Duration, Ratio};
use memstream_workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. wear-balance ablation -----------------------------------------
    println!("probe wear balance (1024 kbps, 20 KiB buffer, one simulated day):");
    println!(
        "{:>6}  {:>14}  {:>16}  {:>10}",
        "skew", "mean-life", "worst-probe life", "imbalance"
    );
    let t_year = Workload::paper_default(BitRate::from_kbps(1024.0)).playback_seconds_per_year();
    for skew in [0.0, 0.5, 1.0, 2.0] {
        let config = SimConfig::cbr(
            MemsDevice::table1(),
            Workload::paper_default(BitRate::from_kbps(1024.0)),
            DataSize::from_kibibytes(20.0),
        )
        .with_probe_skew(skew);
        let report = StreamingSimulation::new(config)?.run_sessions(1, Duration::from_hours(8.0));
        println!(
            "{:>6.1}  {:>14}  {:>16}  {:>9.0}%",
            skew,
            format!("{}", report.projected_probes_lifetime(t_year)),
            format!("{}", report.projected_probes_lifetime_worst(t_year)),
            report
                .wear
                .probes()
                .expect("probe device")
                .probe_imbalance()
                * 100.0,
        );
    }
    println!(
        "=> a 2x hot/cold spread halves the effective probes lifetime; Eq. (6)'s\n\
         balance assumption is load-bearing.\n"
    );

    // --- 2. format design space -------------------------------------------
    println!("stripe-width sweep (8 KiB payload, MEMS ECC, 3 sync bits):");
    println!("{:>8}  {:>8}  {:>22}", "K", "u [%]", "min sector for 88%");
    for p in stripe_width_sweep(
        [64, 256, 1024, 4096],
        DataSize::from_kibibytes(8.0),
        EccPolicy::MEMS,
        3,
        Ratio::from_percent(88.0),
    )? {
        println!(
            "{:>8}  {:>8.2}  {:>22}",
            p.format.stripe_width(),
            p.utilization.percent(),
            p.min_user_for_target
                .map(|b| format!("{b}"))
                .unwrap_or_else(|| "unreachable".to_owned()),
        );
    }

    println!("\nsync-bit sweep (8 KiB payload, K = 1024):");
    println!(
        "{:>8}  {:>8}  {:>22}",
        "sync", "u [%]", "min sector for 88%"
    );
    for (count, p) in [1u64, 3, 10, 30].into_iter().zip(sync_bits_sweep(
        [1, 3, 10, 30],
        DataSize::from_kibibytes(8.0),
        Ratio::from_percent(88.0),
    )) {
        println!(
            "{:>8}  {:>8.2}  {:>22}",
            count,
            p.utilization.percent(),
            p.min_user_for_target
                .map(|b| format!("{b}"))
                .unwrap_or_else(|| "unreachable".to_owned()),
        );
    }
    println!(
        "\n=> wider stripes buy bandwidth but pay sync bits per subsector: at the\n\
         paper's K = 1024 the 88% capacity goal needs a 33 KiB sector, which is\n\
         why the capacity requirement, not energy, anchors the minimum buffer."
    );
    Ok(())
}
