//! VBR extension: what variable-bit-rate streams do to buffer dimensioning.
//!
//! The paper's model is CBR. This example (an extension, see `DESIGN.md`
//! §6) streams a sinusoidal VBR load — 1024 kbps mean, 2048 kbps peak —
//! through the simulator at several buffer sizes and shows that a buffer
//! dimensioned for the *mean* rate starves at the peak, while dimensioning
//! for the peak restores clean playback at a modest energy cost.
//!
//! Run with: `cargo run --release --example vbr_streaming`

use memstream_core::SystemModel;
use memstream_device::MemsDevice;
use memstream_sim::{SimConfig, StreamingSimulation};
use memstream_units::{BitRate, DataSize, Duration};
use memstream_workload::{RateSchedule, VbrProfile, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mean = BitRate::from_kbps(1024.0);
    let peak = BitRate::from_kbps(2048.0);
    let vbr = RateSchedule::Vbr(VbrProfile::new(mean, peak, Duration::from_seconds(8.0))?);
    let horizon = Duration::from_seconds(600.0);

    // Reference buffers from the CBR model at the mean and at the peak.
    let mean_model = SystemModel::paper_default(mean);
    let peak_model = SystemModel::paper_default(peak);
    let be_mean = mean_model.break_even_buffer()?;
    let be_peak = peak_model.break_even_buffer()?;
    println!("CBR break-even at mean rate: {be_mean}; at peak rate: {be_peak}\n");

    println!(
        "{:>12}  {:>10}  {:>14}  {:>14}  {:>12}",
        "buffer", "underruns", "starved", "min level", "energy/bit"
    );
    for kib in [4.0, 8.0, 16.0, 32.0, 64.0] {
        let buffer = DataSize::from_kibibytes(kib);
        let config = SimConfig::cbr(MemsDevice::table1(), Workload::paper_default(mean), buffer)
            .with_schedule(vbr.clone());
        let report = StreamingSimulation::new(config)?.run(horizon);
        println!(
            "{:>12}  {:>10}  {:>14}  {:>14}  {:>12}",
            format!("{buffer}"),
            report.underruns,
            format!("{}", report.starved),
            format!("{}", report.min_buffer_level),
            format!("{}", report.energy_per_bit()),
        );
    }

    println!(
        "\nlesson: VBR buffers must be dimensioned against the PEAK rate; the \
         paper's\ninverse functions applied at the peak give the safe size, \
         and the capacity\nand lifetime requirements (which already demand \
         much larger buffers) provide\nthe headroom for free."
    );
    Ok(())
}
