//! Buffer dimensioning across the streaming-rate range: a text rendition
//! of the paper's Fig. 3 exploration.
//!
//! For each of the paper's three design goals, sweeps the 32–4096 kbps
//! range, prints the required buffer, the energy-efficiency buffer and the
//! dominating requirement per rate, and draws the log-log buffer curve.
//!
//! Run with: `cargo run --example buffer_dimensioning`

use memstream_core::{
    log_spaced_rates, render_ascii_chart, AsciiChart, Axis, DesignGoal, Series, SweepBuilder,
    SystemModel,
};
use memstream_device::MemsDevice;
use memstream_units::BitRate;

fn explore(title: &str, model: &SystemModel, goal: &DesignGoal) {
    println!("--- {title}: goal {goal} ---");
    let sweep = SweepBuilder::new(model);
    let points = sweep.rate_sweep(goal, log_spaced_rates(32.0, 4096.0, 21));

    println!(
        "{:>10}  {:>14}  {:>14}  {:>9}",
        "rate", "required", "energy-buffer", "dictated"
    );
    let mut required = Vec::new();
    let mut energy = Vec::new();
    for p in &points {
        let kbps = p.rate.kilobits_per_second();
        let (req, label) = match &p.plan {
            Ok(plan) => (format!("{}", plan.buffer()), p.region_label()),
            Err(_) => ("infeasible".to_owned(), "X"),
        };
        let eb = p
            .energy_buffer
            .map(|b| format!("{b}"))
            .unwrap_or_else(|| "-".to_owned());
        println!("{kbps:>8.0} k  {req:>14}  {eb:>14}  {label:>9}");
        if let Ok(plan) = &p.plan {
            required.push((kbps, plan.buffer().kibibytes()));
        }
        if let Some(b) = p.energy_buffer {
            energy.push((kbps, b.kibibytes()));
        }
    }

    let chart = AsciiChart::new(
        format!("{title}: buffer vs streaming rate"),
        Axis::log("streaming rate [kbps]"),
        Axis::log("buffer [KiB]"),
        vec![
            Series::new("minimal required buffer", '*', required),
            Series::new("energy-efficiency buffer", 'o', energy),
        ],
    );
    println!("\n{}", render_ascii_chart(&chart));
}

fn main() {
    let base = SystemModel::paper_default(BitRate::from_kbps(1024.0));

    // Fig. 3a: (E = 80%, C = 88%, L = 7) on the stock device.
    explore("fig 3a", &base, &DesignGoal::fig3a());

    // Fig. 3b: (E = 70%, C = 88%, L = 7) on the stock device.
    explore("fig 3b", &base, &DesignGoal::fig3b());

    // Fig. 3c: same goal on the upgraded device (Dpb = 200, silicon springs).
    let upgraded = base.with_device(
        MemsDevice::table1()
            .with_probe_write_cycles(200.0)
            .with_spring_duty_cycles(1e12),
    );
    explore("fig 3c", &upgraded, &DesignGoal::fig3b());
}
