//! Simulate a full playback day and check the analytic model against the
//! discrete-event simulator.
//!
//! Runs the Fig. 1 architecture for one simulated 8-hour playback day at
//! 1024 kbps with a 20 KiB buffer, prints the measured energy, state
//! residencies and wear, and compares each against Eqs. (1), (5) and (6).
//!
//! Run with: `cargo run --release --example streaming_sim`

use memstream_core::SystemModel;
use memstream_device::{DramModel, MemsDevice, PowerState};
use memstream_sim::{SimConfig, StreamingSimulation};
use memstream_units::{BitRate, DataSize, Duration};
use memstream_workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = BitRate::from_kbps(1024.0);
    let buffer = DataSize::from_kibibytes(20.0);
    let workload = Workload::paper_default(rate);
    let day = Duration::from_hours(8.0);

    println!("simulating one playback day: {rate} stream, {buffer} buffer ...");
    let config = SimConfig::cbr(MemsDevice::table1(), workload, buffer)
        .with_dram(DramModel::micron_ddr_mobile());
    let report = StreamingSimulation::new(config)?.run(day);

    println!("\nmeasured:");
    println!("  cycles          {}", report.cycles);
    println!("  consumed        {}", report.bits_consumed);
    println!("  underruns       {}", report.underruns);
    println!("  min buffer      {}", report.min_buffer_level);
    println!("  total energy    {}", report.total_energy());
    println!("  per-bit energy  {}", report.energy_per_bit());
    println!("  mean power      {}", report.mean_power());
    for state in PowerState::ALL {
        println!(
            "  {:<12} {:>6.2}% of time, {}",
            state.to_string(),
            report.time_fraction(state) * 100.0,
            report.meter.energy_in(state)
        );
    }
    println!("  dram energy     {}", report.meter.dram_energy());

    let model = SystemModel::paper_default(rate);
    let t_year = model.workload().playback_seconds_per_year();
    println!("\nanalytic model (Eqs. (1), (5), (6)) for the same point:");
    println!("  per-bit energy  {}", model.per_bit_energy(buffer)?);
    println!("  springs life    {}", model.springs_lifetime(buffer));
    println!("  probes life     {}", model.probes_lifetime(buffer));

    println!("\nsim-projected lifetimes (from one day of wear):");
    println!(
        "  springs life    {}",
        report.projected_springs_lifetime(t_year)
    );
    println!(
        "  probes life     {}",
        report.projected_probes_lifetime(t_year)
    );

    let sim = report.energy_per_bit().joules_per_bit();
    let ana = model.per_bit_energy(buffer)?.joules_per_bit();
    println!(
        "\nagreement: sim vs model per-bit energy differ by {:.3}%",
        (sim - ana).abs() / ana * 100.0
    );
    Ok(())
}
