//! MEMS versus 1.8-inch disk: the break-even-buffer contrast of §III-A.1.
//!
//! The same energy model runs on both devices (they share the
//! `EnergyModelled` interface); only the overhead magnitudes differ —
//! milliseconds and millijoules for MEMS, seconds and joules for the disk —
//! and the break-even buffers land three orders of magnitude apart.
//!
//! Run with: `cargo run --example device_comparison`

use memstream_core::{log_spaced_rates, BestEffortPolicy, EnergyModel};
use memstream_device::{DiskDevice, EnergyModelled, MemsDevice};
use memstream_workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mems = MemsDevice::table1();
    let disk = DiskDevice::calibrated_1p8_inch();
    let devices: Vec<&dyn EnergyModelled> = vec![&mems, &disk];

    println!("device overheads (the root of the contrast):");
    for d in &devices {
        println!(
            "  {:<40} toh = {:>9}, Eoh = {:>10}",
            d.name(),
            d.overhead_time(),
            d.overhead_energy()
        );
    }

    println!("\nbreak-even buffer by streaming rate:");
    println!(
        "{:>10}  {:>16}  {:>16}  {:>7}",
        "rate", "MEMS", "1.8\" disk", "ratio"
    );
    for rate in log_spaced_rates(32.0, 4096.0, 8) {
        let workload = Workload::paper_default(rate);
        let be: Vec<_> = devices
            .iter()
            .map(|d| {
                EnergyModel::new(*d, workload, BestEffortPolicy::AtReadWrite, None)
                    .break_even_buffer()
            })
            .collect::<Result<_, _>>()?;
        println!(
            "{:>8.0} k  {:>16}  {:>16}  {:>6.0}x",
            rate.kilobits_per_second(),
            format!("{}", be[0]),
            format!("{}", be[1]),
            be[1] / be[0]
        );
    }

    println!(
        "\nthe paper's point: the MEMS break-even buffer (0.07-9 kB) is three \
         orders of\nmagnitude below the disk's (0.08-9 MB) - so small that \
         capacity formatting and\nspring wear, not energy, dictate MEMS buffer \
         sizes."
    );
    Ok(())
}
